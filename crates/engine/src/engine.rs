//! The simulated DBMS: optimizer (hint- and switch-steerable plan choice),
//! statement execution and the session interface used by TQS.

use crate::dml::{apply_mutation, DmlOp, DmlOutcome};
use crate::exec::{execute_join, ColumnPruner, ExecContext, ExecError, Rel};
use crate::faults::{FaultKind, FaultSet};
use crate::plan::{JoinAlgo, PhysicalJoin, PhysicalPlan, SubqueryPlan};
use crate::profiles::DbmsProfile;
use std::cell::RefCell;
use std::collections::HashMap;
use tqs_sql::ast::{AggFunc, BinOp, ColumnRef, DmlStmt, Expr, JoinType, SelectItem, SelectStmt};
use tqs_sql::eval::{
    eval_expr, eval_predicate, ChainedResolver, ColumnResolver, EvalError, SubqueryHandler,
    SubqueryMemo,
};
use tqs_sql::hints::{Hint, HintSet, SemiJoinStrategy, SessionSwitch, SwitchName};
use tqs_sql::parser::{parse_dml, parse_stmt, ParseError};
use tqs_sql::value::{sql_compare, KeyBuf, SqlCmp, Value};
use tqs_storage::{Catalog, ResultSet, Row};
use tqs_telemetry::QueryProfile;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    UnknownTable(String),
    Parse(ParseError),
    Exec(ExecError),
    Eval(EvalError),
    Unsupported(String),
    /// The disk engine's page store failed (I/O error or injected crash).
    Storage(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}
impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    pub result: ResultSet,
    pub plan: PhysicalPlan,
    /// Faults that fired during this execution. The detector must not look at
    /// this; the benchmark harness uses it as "developer root-cause analysis"
    /// when reproducing Table 4.
    pub fired: Vec<FaultKind>,
    /// Operator-level row counts and timings, collected only while telemetry
    /// is enabled (`None` otherwise — the hot path stays allocation-free).
    pub profile: Option<QueryProfile>,
}

/// The open transaction of a session: the catalog as it stood at `BEGIN`
/// (cheap to keep — tables are `Arc`-shared until mutated) plus the ops
/// applied since, in order.
#[derive(Debug, Clone)]
pub(crate) struct DmlTxn {
    snapshot: Catalog,
    ops: Vec<DmlOp>,
}

/// A simulated DBMS instance: a loaded catalog, a profile (with its latent
/// faults), and per-session optimizer switches.
#[derive(Debug, Clone)]
pub struct Database {
    pub catalog: Catalog,
    pub profile: DbmsProfile,
    pub(crate) switches: HashMap<SwitchName, bool>,
    /// The open transaction, if any (single-session visibility: this
    /// session's own uncommitted writes live directly in `catalog`).
    txn: Option<DmlTxn>,
}

impl Database {
    pub fn new(catalog: Catalog, profile: DbmsProfile) -> Self {
        Database {
            catalog,
            profile,
            switches: HashMap::new(),
            txn: None,
        }
    }

    /// Is a transaction open on this session?
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Ops the open transaction has applied so far (empty outside one). The
    /// disk engine replays these onto its scanned catalog so a session sees
    /// its own uncommitted writes.
    pub fn txn_ops(&self) -> &[DmlOp] {
        self.txn.as_ref().map(|t| t.ops.as_slice()).unwrap_or(&[])
    }

    /// Drop any open transaction without touching the catalog — the disk
    /// engine's crash recovery discards in-flight state this way after it
    /// has rebuilt the catalog from durable storage.
    pub(crate) fn clear_txn(&mut self) {
        self.txn = None;
    }

    /// Execute one DML / transaction-control statement against this session.
    ///
    /// Mutations apply immediately to `catalog` (this session sees its own
    /// writes); `BEGIN` snapshots, `ROLLBACK` restores the snapshot exactly
    /// and `COMMIT` makes the delta permanent. The enabled
    /// [`FaultKind::DML`] faults fire here on their trigger shapes — see the
    /// [`crate::dml`] module docs.
    pub fn execute_dml(&mut self, stmt: &DmlStmt) -> Result<DmlOutcome, EngineError> {
        match stmt {
            DmlStmt::Begin => {
                if self.txn.is_some() {
                    return Err(EngineError::Unsupported(
                        "BEGIN inside an open transaction".into(),
                    ));
                }
                self.txn = Some(DmlTxn {
                    snapshot: self.catalog.clone(),
                    ops: Vec::new(),
                });
                Ok(DmlOutcome::default())
            }
            DmlStmt::Commit => {
                let t = self.txn.take().ok_or_else(|| {
                    EngineError::Unsupported("COMMIT without an open transaction".into())
                })?;
                let mut out = DmlOutcome {
                    ops: t.ops,
                    ..DmlOutcome::default()
                };
                if self
                    .profile
                    .faults
                    .contains(FaultKind::DmlCommitBoundaryTornVisibility)
                {
                    // The commit publishes every buffered change except the
                    // last: tear it back off the live catalog.
                    if let Some(last) = out.ops.pop() {
                        last.revert(&mut self.catalog);
                        out.fire(FaultKind::DmlCommitBoundaryTornVisibility);
                    }
                }
                Ok(out)
            }
            DmlStmt::Rollback => {
                let t = self.txn.take().ok_or_else(|| {
                    EngineError::Unsupported("ROLLBACK without an open transaction".into())
                })?;
                self.catalog = t.snapshot;
                let mut out = DmlOutcome::default();
                if self
                    .profile
                    .faults
                    .contains(FaultKind::DmlRollbackLeaksInsertedRow)
                {
                    // The rollback missed the transaction's first insert: the
                    // row comes back, appended at the end of its table.
                    let leaked = t.ops.iter().find_map(|op| match op {
                        DmlOp::Insert { table, row, .. } => Some((table.clone(), row.clone())),
                        _ => None,
                    });
                    if let Some((table, row)) = leaked {
                        if let Some(tab) = self.catalog.table_mut(&table) {
                            let idx = tab.rows.len();
                            tab.rows.push(Row::new(row.clone()));
                            out.ops.push(DmlOp::Insert { table, idx, row });
                            out.fire(FaultKind::DmlRollbackLeaksInsertedRow);
                        }
                    }
                }
                Ok(out)
            }
            _ => {
                let out = apply_mutation(&mut self.catalog, &self.profile.faults, stmt)?;
                if let Some(t) = self.txn.as_mut() {
                    t.ops.extend(out.ops.iter().cloned());
                }
                Ok(out)
            }
        }
    }

    /// Execute DML text (parses one statement, then executes).
    pub fn execute_dml_sql(&mut self, sql: &str) -> Result<DmlOutcome, EngineError> {
        let stmt = parse_dml(sql)?;
        self.execute_dml(&stmt)
    }

    /// `SET optimizer_switch='name=on|off'`.
    pub fn apply_switch(&mut self, s: SessionSwitch) {
        self.switches.insert(s.name, s.on);
    }

    pub fn reset_switches(&mut self) {
        self.switches.clear();
    }

    fn switch_on(&self, name: SwitchName) -> bool {
        *self.switches.get(&name).unwrap_or(&true)
    }

    pub(crate) fn switched_off_names(&self) -> Vec<&'static str> {
        SwitchName::ALL
            .iter()
            .filter(|n| !self.switch_on(**n))
            .map(|n| n.name())
            .collect()
    }

    /// Execute a transformed query: apply the hint set's session switches,
    /// splice its hints into the statement, execute, then restore switches.
    pub fn execute_with_hints(
        &mut self,
        stmt: &SelectStmt,
        hints: &HintSet,
    ) -> Result<ExecOutcome, EngineError> {
        let saved = self.switches.clone();
        for s in &hints.switches {
            self.apply_switch(*s);
        }
        let mut hinted = stmt.clone();
        hinted.hints.extend(hints.hints.iter().cloned());
        let out = self.execute(&hinted);
        self.switches = saved;
        out
    }

    /// Execute SQL text (parses, then executes).
    pub fn execute_sql(&self, sql: &str) -> Result<ExecOutcome, EngineError> {
        let stmt = parse_stmt(sql)?;
        self.execute(&stmt)
    }

    /// EXPLAIN: the physical plan the optimizer would choose.
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String, EngineError> {
        Ok(self.plan(stmt)?.explain())
    }

    /// The optimizer: choose a physical plan for `stmt` given the session
    /// switches, the statement's hints and the profile defaults.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<PhysicalPlan, EngineError> {
        let mut notes = Vec::new();
        let materialization = self.materialization_enabled(stmt);
        let semi_strategy = self.semi_strategy(stmt);
        let subquery_plan = self.subquery_plan(stmt, materialization, semi_strategy);

        // Join order: AST order unless a JOIN_ORDER hint gives a valid
        // alternative (base table stays first; every ON must only reference
        // bindings already joined).
        let mut join_order: Vec<usize> = (0..stmt.from.joins.len()).collect();
        if let Some(Hint::JoinOrder(order)) =
            stmt.hints.iter().find(|h| matches!(h, Hint::JoinOrder(_)))
        {
            if let Some(reordered) = self.reorder_joins(stmt, order) {
                join_order = reordered;
                notes.push("join order forced by JOIN_ORDER hint".into());
            } else {
                notes.push("JOIN_ORDER hint ignored (invalid order)".into());
            }
        }

        // Outer-join simplification: a LEFT OUTER JOIN whose right side is
        // referenced by a null-rejecting WHERE conjunct or by a later inner
        // join condition is rewritten to an inner join.
        let simplify: Vec<bool> = stmt
            .from
            .joins
            .iter()
            .enumerate()
            .map(|(i, j)| {
                j.join_type == JoinType::LeftOuter && self.null_rejecting_reference(stmt, i)
            })
            .collect();

        let mut joins = Vec::new();
        for &i in &join_order {
            let j = &stmt.from.joins[i];
            let binding = j.table.binding().to_string();
            let (join_type, simplified) = if simplify[i] {
                notes.push(format!(
                    "left outer join {binding} simplified to inner join"
                ));
                (JoinType::Inner, true)
            } else {
                (j.join_type, false)
            };
            let right_has_key = self.right_has_key(j);
            let algo = self.choose_algo(stmt, &binding, join_type, right_has_key);
            let buffer_rows = self.buffer_for(algo, join_type);
            joins.push(PhysicalJoin {
                right_binding: binding,
                join_type,
                algo,
                simplified_from_outer: simplified,
                buffer_rows,
            });
        }

        Ok(PhysicalPlan {
            base_binding: stmt.from.base.binding().to_string(),
            joins,
            subquery_plan,
            notes,
        })
    }

    pub(crate) fn materialization_enabled(&self, stmt: &SelectStmt) -> bool {
        if let Some(Hint::Materialization(b)) = stmt
            .hints
            .iter()
            .find(|h| matches!(h, Hint::Materialization(_)))
        {
            return *b;
        }
        self.switch_on(SwitchName::Materialization) && self.profile.default_materialization
    }

    pub(crate) fn semi_strategy(&self, stmt: &SelectStmt) -> Option<SemiJoinStrategy> {
        for h in &stmt.hints {
            match h {
                Hint::NoSemiJoin => return None,
                Hint::SemiJoin(Some(s)) => return Some(*s),
                Hint::SemiJoin(None) => return Some(SemiJoinStrategy::Materialization),
                _ => {}
            }
        }
        if self.profile.default_semijoin_transform {
            Some(SemiJoinStrategy::Materialization)
        } else {
            Some(SemiJoinStrategy::FirstMatch)
        }
    }

    fn subquery_plan(
        &self,
        stmt: &SelectStmt,
        materialization: bool,
        semi: Option<SemiJoinStrategy>,
    ) -> SubqueryPlan {
        if !stmt.has_subquery() {
            return SubqueryPlan::DirectPerRow;
        }
        if stmt
            .hints
            .iter()
            .any(|h| matches!(h, Hint::SubqueryToDerived))
        {
            return SubqueryPlan::SubqueryToDerived;
        }
        match semi {
            Some(s) if self.profile.default_semijoin_transform => {
                SubqueryPlan::SemiJoinTransform(s)
            }
            _ if materialization => SubqueryPlan::Materialize,
            _ => SubqueryPlan::DirectPerRow,
        }
    }

    fn reorder_joins(&self, stmt: &SelectStmt, order: &[String]) -> Option<Vec<usize>> {
        if stmt.from.joins.iter().any(|j| {
            !matches!(
                j.join_type,
                JoinType::Inner | JoinType::Cross | JoinType::LeftOuter
            )
        }) {
            return None;
        }
        let mut result = Vec::new();
        for name in order {
            if name.eq_ignore_ascii_case(stmt.from.base.binding()) {
                continue;
            }
            let idx = stmt
                .from
                .joins
                .iter()
                .position(|j| j.table.binding().eq_ignore_ascii_case(name))?;
            if !result.contains(&idx) {
                result.push(idx);
            }
        }
        for i in 0..stmt.from.joins.len() {
            if !result.contains(&i) {
                result.push(i);
            }
        }
        // validity: each join's ON may only reference already-available bindings
        let mut available: Vec<String> = vec![stmt.from.base.binding().to_lowercase()];
        for &i in &result {
            let j = &stmt.from.joins[i];
            let self_binding = j.table.binding().to_lowercase();
            if let Some(on) = &j.on {
                for c in on.column_refs() {
                    if let Some(t) = &c.table {
                        let t = t.to_lowercase();
                        if t != self_binding && !available.contains(&t) {
                            return None;
                        }
                    }
                }
            }
            available.push(self_binding);
        }
        Some(result)
    }

    /// Does a WHERE conjunct or a later inner-join condition reject NULLs of
    /// the right side of join `idx`?
    fn null_rejecting_reference(&self, stmt: &SelectStmt, idx: usize) -> bool {
        let binding = stmt.from.joins[idx].table.binding().to_lowercase();
        let mentions = |e: &Expr| -> bool {
            e.column_refs().iter().any(|c| {
                c.table
                    .as_ref()
                    .map(|t| t.to_lowercase() == binding)
                    .unwrap_or(false)
            })
        };
        // later join conditions
        for j in stmt.from.joins.iter().skip(idx + 1) {
            if matches!(j.join_type, JoinType::Inner | JoinType::Semi) {
                if let Some(on) = &j.on {
                    if mentions(on) {
                        return true;
                    }
                }
            }
        }
        // null-rejecting WHERE conjuncts (comparisons, not IS NULL)
        if let Some(w) = &stmt.where_clause {
            let mut conjuncts = Vec::new();
            flatten_and(w, &mut conjuncts);
            for c in conjuncts {
                if let Expr::Binary { op, .. } = c {
                    if op.is_comparison() && *op != BinOp::NullSafeEq && mentions(c) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn right_has_key(&self, join: &tqs_sql::ast::Join) -> bool {
        let table = match self.catalog.table(&join.table.table) {
            Some(t) => t,
            None => return false,
        };
        match &join.on {
            Some(on) => on.column_refs().iter().any(|c| {
                c.table
                    .as_ref()
                    .map(|t| t.eq_ignore_ascii_case(join.table.binding()))
                    .unwrap_or(false)
                    && table.has_key_on(&c.column)
            }),
            None => false,
        }
    }

    fn choose_algo(
        &self,
        stmt: &SelectStmt,
        binding: &str,
        join_type: JoinType,
        right_has_key: bool,
    ) -> JoinAlgo {
        let applies = |tables: &Vec<String>| {
            tables.is_empty() || tables.iter().any(|t| t.eq_ignore_ascii_case(binding))
        };
        let mut forbidden_hash = false;
        for h in &stmt.hints {
            match h {
                Hint::HashJoin(t) if applies(t) => return JoinAlgo::HashJoin,
                Hint::MergeJoin(t) if applies(t) => return JoinAlgo::SortMergeJoin,
                Hint::NlJoin(t) if applies(t) => {
                    return if self.switch_on(SwitchName::BlockNestedLoop) {
                        JoinAlgo::BlockNestedLoop
                    } else {
                        JoinAlgo::NestedLoop
                    }
                }
                Hint::IndexJoin(t) if applies(t) => return JoinAlgo::IndexJoin,
                Hint::NoHashJoin(t) if applies(t) => forbidden_hash = true,
                _ => {}
            }
        }
        if join_type == JoinType::Cross {
            return JoinAlgo::NestedLoop;
        }
        let mut algo = self.profile.default_equi_algo;
        // profile/switch modulation
        if algo == JoinAlgo::IndexJoin && !right_has_key {
            algo = JoinAlgo::HashJoin;
        }
        if self.profile.info.name.starts_with("MariaDB") {
            algo = if right_has_key
                && self.switch_on(SwitchName::BatchedKeyAccess)
                && self.switch_on(SwitchName::JoinCacheBka)
            {
                JoinAlgo::BatchedKeyAccess
            } else if self.switch_on(SwitchName::JoinCacheHashed) {
                JoinAlgo::BlockNestedLoopHashed
            } else {
                JoinAlgo::BlockNestedLoop
            };
        }
        if algo == JoinAlgo::HashJoin && (!self.switch_on(SwitchName::HashJoin) || forbidden_hash) {
            algo = if self.switch_on(SwitchName::BlockNestedLoop) {
                JoinAlgo::BlockNestedLoop
            } else {
                JoinAlgo::NestedLoop
            };
        }
        if algo == JoinAlgo::BlockNestedLoopHashed && !self.switch_on(SwitchName::JoinCacheHashed) {
            algo = JoinAlgo::BlockNestedLoop;
        }
        if algo == JoinAlgo::BatchedKeyAccess && !self.switch_on(SwitchName::JoinCacheBka) {
            algo = JoinAlgo::BlockNestedLoop;
        }
        if !self.switch_on(SwitchName::BlockNestedLoop) && algo == JoinAlgo::BlockNestedLoop {
            algo = JoinAlgo::NestedLoop;
        }
        algo
    }

    fn buffer_for(&self, algo: JoinAlgo, join_type: JoinType) -> Option<usize> {
        let buffered = matches!(
            algo,
            JoinAlgo::BlockNestedLoop
                | JoinAlgo::BlockNestedLoopHashed
                | JoinAlgo::BatchedKeyAccess
        );
        if !buffered {
            return None;
        }
        let outer = matches!(
            join_type,
            JoinType::LeftOuter | JoinType::RightOuter | JoinType::FullOuter
        );
        if outer && !self.switch_on(SwitchName::OuterJoinWithCache) {
            return None;
        }
        Some(self.profile.join_buffer_rows)
    }

    /// Execute a statement and return its result set, plan and fired faults.
    pub fn execute(&self, stmt: &SelectStmt) -> Result<ExecOutcome, EngineError> {
        let plan = self.plan(stmt)?;
        let mut ctx = ExecContext::new(self.profile.faults.clone());
        ctx.switched_off = self.switched_off_names();
        ctx.materialization = self.materialization_enabled(stmt);
        ctx.subquery_present = stmt.has_subquery();
        ctx.semi_strategy = self.semi_strategy(stmt);
        ctx.check_cancelled()?;

        let _stmt_span = tqs_telemetry::span("engine", "row.execute");

        // Base scan (pruned to the columns the statement can observe).
        let op_t0 = ctx.op_start();
        let pruner = ColumnPruner::new(stmt);
        let base_table = self
            .catalog
            .table(&stmt.from.base.table)
            .ok_or_else(|| EngineError::UnknownTable(stmt.from.base.table.clone()))?;
        let mut rel = Rel::scan_pruned(base_table, stmt.from.base.binding(), &pruner);
        if op_t0.is_some() {
            let rows = rel.rows.len() as u64;
            ctx.op_end(op_t0, "scan", rows, rows);
            tqs_telemetry::counter!("engine.row.scan.rows_out").add(rows);
        }

        // Joins, in plan order.
        for pj in &plan.joins {
            ctx.check_cancelled()?;
            let ast_join = stmt
                .from
                .joins
                .iter()
                .find(|j| j.table.binding().eq_ignore_ascii_case(&pj.right_binding))
                .ok_or_else(|| EngineError::Unsupported("plan/AST join mismatch".into()))?;
            let right_table = self
                .catalog
                .table(&ast_join.table.table)
                .ok_or_else(|| EngineError::UnknownTable(ast_join.table.table.clone()))?;
            let right = Rel::scan_pruned(right_table, ast_join.table.binding(), &pruner);
            rel = execute_join(&rel, &right, pj, ast_join.on.as_ref(), &mut ctx)?;
        }

        // WHERE filtering (with subquery strategies and the constant-cache
        // fault applied).
        let sub = EngineSubqueries::new(self, plan.subquery_plan, ctx.materialization);
        if let Some(pred) = &stmt.where_clause {
            let op_t0 = ctx.op_start();
            let rows_in = rel.rows.len() as u64;
            let pred = self.apply_constant_cache_fault(pred, &rel, &mut ctx);
            let mut kept = Vec::new();
            for row in &rel.rows {
                let resolver = rel.resolver(row);
                if eval_predicate(&pred, &resolver, &sub)? == Some(true) {
                    kept.push(row.clone());
                }
            }
            rel.rows = kept;
            if op_t0.is_some() {
                let rows_out = rel.rows.len() as u64;
                ctx.op_end(op_t0, "filter", rows_in, rows_out);
                tqs_telemetry::counter!("engine.row.filter.rows_in").add(rows_in);
                tqs_telemetry::counter!("engine.row.filter.rows_out").add(rows_out);
            }
        }

        // Projection / aggregation / DISTINCT / LIMIT.
        let op_t0 = ctx.op_start();
        let rows_in = rel.rows.len() as u64;
        let grouped = stmt.has_aggregates() || !stmt.group_by.is_empty();
        let mut result = if grouped {
            self.aggregate(stmt, &rel, &sub)?
        } else {
            self.project(stmt, &rel, &sub)?
        };
        if stmt.distinct {
            result = distinct(result);
        }
        if let Some(l) = stmt.limit {
            result.rows.truncate(l as usize);
        }
        if op_t0.is_some() {
            let rows_out = result.rows.len() as u64;
            let op = if grouped { "group" } else { "project" };
            ctx.op_end(op_t0, op, rows_in, rows_out);
            if grouped {
                tqs_telemetry::counter!("engine.row.group.rows_in").add(rows_in);
                tqs_telemetry::counter!("engine.row.group.rows_out").add(rows_out);
            }
            tqs_telemetry::counter!("engine.row.statements").incr();
        }

        ctx.fired.extend(sub.into_fired());
        ctx.fired.dedup();
        Ok(ExecOutcome {
            result,
            plan,
            fired: ctx.fired,
            profile: ctx.profile,
        })
    }

    /// Fault #6: `<=>` comparisons against a literal reuse a constant that
    /// was type-converted against the first row; if that first value was
    /// NULL, the cached constant degrades to NULL.
    fn apply_constant_cache_fault(&self, pred: &Expr, rel: &Rel, ctx: &mut ExecContext) -> Expr {
        if !self
            .profile
            .faults
            .contains(FaultKind::ConstantCacheNullSafeEq)
            || rel.rows.is_empty()
        {
            return pred.clone();
        }
        let first = &rel.rows[0];
        let mut fired = false;
        let rewritten = rewrite_null_safe_eq(pred, &mut |col: &tqs_sql::ast::ColumnRef| {
            let idx = rel.col_index(col.table.as_deref(), &col.column)?;
            if first[idx].is_null() {
                fired = true;
                Some(Value::Null)
            } else {
                None
            }
        });
        if fired {
            ctx.fire(FaultKind::ConstantCacheNullSafeEq);
        }
        rewritten
    }

    pub(crate) fn project(
        &self,
        stmt: &SelectStmt,
        rel: &Rel,
        sub: &EngineSubqueries<'_>,
    ) -> Result<ResultSet, EngineError> {
        let mut columns = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (b, c) in &rel.cols {
                        columns.push(format!("{b}.{c}"));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    columns.push(alias.clone().unwrap_or_else(|| format!("{expr:?}")))
                }
                SelectItem::Aggregate { .. } => {
                    return Err(EngineError::Unsupported(
                        "aggregate without GROUP BY path".into(),
                    ))
                }
            }
        }
        let mut rs = ResultSet::new(columns);
        for row in &rel.rows {
            let resolver = rel.resolver(row);
            let mut out = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => out.extend(row.clone()),
                    SelectItem::Expr { expr, .. } => out.push(eval_expr(expr, &resolver, sub)?),
                    SelectItem::Aggregate { .. } => unreachable!(),
                }
            }
            rs.rows.push(Row::new(out));
        }
        Ok(rs)
    }

    pub(crate) fn aggregate(
        &self,
        stmt: &SelectStmt,
        rel: &Rel,
        sub: &EngineSubqueries<'_>,
    ) -> Result<ResultSet, EngineError> {
        let mut groups: HashMap<KeyBuf, Vec<usize>> = HashMap::new();
        let mut order: Vec<KeyBuf> = Vec::new();
        let mut key = KeyBuf::new();
        for (i, row) in rel.rows.iter().enumerate() {
            let resolver = rel.resolver(row);
            key.clear();
            for g in &stmt.group_by {
                let v = eval_expr(g, &resolver, sub)?;
                key.push_group(&v);
            }
            match groups.get_mut(&key) {
                Some(members) => members.push(i),
                None => {
                    order.push(key.clone());
                    groups.insert(key.clone(), vec![i]);
                }
            }
        }
        if stmt.group_by.is_empty() && groups.is_empty() {
            order.push(KeyBuf::new());
            groups.insert(KeyBuf::new(), Vec::new());
        }
        let columns: Vec<String> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".into(),
                SelectItem::Expr { alias, expr } => {
                    alias.clone().unwrap_or_else(|| format!("{expr:?}"))
                }
                SelectItem::Aggregate { alias, func, .. } => {
                    alias.clone().unwrap_or_else(|| format!("{func:?}"))
                }
            })
            .collect();
        let mut rs = ResultSet::new(columns);
        for key in order {
            let members = &groups[&key];
            let mut out = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(EngineError::Unsupported("wildcard with GROUP BY".into()))
                    }
                    SelectItem::Expr { expr, .. } => {
                        let v = match members.first() {
                            Some(&i) => eval_expr(expr, &rel.resolver(&rel.rows[i]), sub)?,
                            None => Value::Null,
                        };
                        out.push(v);
                    }
                    SelectItem::Aggregate { func, arg, .. } => {
                        let mut vals = Vec::new();
                        if let Some(e) = arg {
                            for &i in members {
                                vals.push(eval_expr(e, &rel.resolver(&rel.rows[i]), sub)?);
                            }
                        }
                        out.push(eval_agg(*func, members.len(), &vals));
                    }
                }
            }
            rs.rows.push(Row::new(out));
        }
        Ok(rs)
    }
}

fn eval_agg(func: AggFunc, group_size: usize, vals: &[Value]) -> Value {
    match func {
        AggFunc::CountStar => Value::Int(group_size as i64),
        AggFunc::Count => Value::Int(vals.iter().filter(|v| !v.is_null()).count() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64_lossy()).collect();
            if nums.is_empty() {
                Value::Null
            } else if func == AggFunc::Sum {
                Value::Double(nums.iter().sum())
            } else {
                Value::Double(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals.iter().filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => match sql_compare(v, &b) {
                        SqlCmp::Ordering(o) => {
                            let take = if func == AggFunc::Min {
                                o == std::cmp::Ordering::Less
                            } else {
                                o == std::cmp::Ordering::Greater
                            };
                            if take {
                                v.clone()
                            } else {
                                b
                            }
                        }
                        SqlCmp::Unknown => b,
                    },
                });
            }
            best.unwrap_or(Value::Null)
        }
    }
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e);
    }
}

/// Rewrite literals compared via `<=>` against a column for which `decide`
/// returns a replacement (the cached-constant corruption).
fn rewrite_null_safe_eq(
    e: &Expr,
    decide: &mut impl FnMut(&tqs_sql::ast::ColumnRef) -> Option<Value>,
) -> Expr {
    match e {
        Expr::Binary {
            op: BinOp::NullSafeEq,
            left,
            right,
        } => {
            if let (Expr::Column(c), Expr::Literal(_)) = (left.as_ref(), right.as_ref()) {
                if let Some(v) = decide(c) {
                    return Expr::Binary {
                        op: BinOp::NullSafeEq,
                        left: left.clone(),
                        right: Box::new(Expr::Literal(v)),
                    };
                }
            }
            if let (Expr::Literal(_), Expr::Column(c)) = (left.as_ref(), right.as_ref()) {
                if let Some(v) = decide(c) {
                    return Expr::Binary {
                        op: BinOp::NullSafeEq,
                        left: Box::new(Expr::Literal(v)),
                        right: right.clone(),
                    };
                }
            }
            e.clone()
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_null_safe_eq(left, decide)),
            right: Box::new(rewrite_null_safe_eq(right, decide)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_null_safe_eq(expr, decide)),
        },
        other => other.clone(),
    }
}

/// Subquery execution for WHERE-clause IN/EXISTS, honouring the chosen
/// subquery plan and its faults. Shared with the columnar executor, whose
/// WHERE phase delegates subquery evaluation here.
pub(crate) struct EngineSubqueries<'a> {
    db: &'a Database,
    plan: SubqueryPlan,
    materialization: bool,
    faults: FaultSet,
    fired: RefCell<Vec<FaultKind>>,
    /// Memo for *uncorrelated* subqueries (shared semantics with the
    /// ground-truth evaluator — see [`SubqueryMemo`]): recomputing a
    /// row-invariant subquery per outer row dominated the filter phase.
    memo: SubqueryMemo,
}

impl<'a> EngineSubqueries<'a> {
    pub(crate) fn new(db: &'a Database, plan: SubqueryPlan, materialization: bool) -> Self {
        EngineSubqueries {
            db,
            plan,
            materialization,
            faults: db.profile.faults.clone(),
            fired: RefCell::new(Vec::new()),
            memo: SubqueryMemo::new(),
        }
    }

    pub(crate) fn into_fired(self) -> Vec<FaultKind> {
        self.fired.into_inner()
    }

    fn fire(&self, kind: FaultKind) {
        let mut f = self.fired.borrow_mut();
        if !f.contains(&kind) {
            f.push(kind);
        }
    }
}

impl EngineSubqueries<'_> {
    fn eval_subquery_inner(
        &self,
        stmt: &SelectStmt,
        outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError> {
        let mut sub = stmt.clone();
        // Fault #1: under semi-join materialization, equality conditions in
        // the subquery's WHERE are neither pushed down nor evaluated.
        let drops_equalities = matches!(
            self.plan,
            SubqueryPlan::SemiJoinTransform(SemiJoinStrategy::Materialization)
        ) && self.faults.contains(FaultKind::SemiJoinWrongResults);
        if drops_equalities {
            if let Some(w) = &sub.where_clause {
                let (kept, dropped) = strip_equality_conjuncts(w);
                if dropped {
                    self.fire(FaultKind::SemiJoinWrongResults);
                    sub.where_clause = kept;
                }
            }
        }
        // Execute the (single-table) subquery with correlation support.
        let table = self.db.catalog.table(&sub.from.base.table).ok_or_else(|| {
            EvalError::Unsupported(format!("unknown table {}", sub.from.base.table))
        })?;
        if !sub.from.joins.is_empty() {
            return Err(EvalError::Unsupported("joins inside subquery".into()));
        }
        let binding = sub.from.base.binding().to_string();
        let expr = match sub.items.first() {
            Some(SelectItem::Expr { expr, .. }) => expr.clone(),
            _ => {
                return Err(EvalError::Unsupported(
                    "subquery must project one expression".into(),
                ))
            }
        };
        let mut out = Vec::new();
        for row in &table.rows {
            // Borrow the stored row directly — no per-call table clone, no
            // per-row scope materialization.
            let inner = TableRow {
                binding: &binding,
                table,
                row: &row.values,
            };
            let resolver = ChainedResolver {
                inner: &inner,
                outer,
            };
            if let Some(pred) = &sub.where_clause {
                if eval_predicate(pred, &resolver, self)? != Some(true) {
                    continue;
                }
            }
            out.push(eval_expr(&expr, &resolver, self)?);
        }
        // Fault #5: the materialized probe set silently drops NULLs, turning
        // NOT IN's UNKNOWN into FALSE.
        if self.materialization
            && self
                .faults
                .contains(FaultKind::AntiJoinMaterializationNullDrop)
            && matches!(
                self.plan,
                SubqueryPlan::Materialize | SubqueryPlan::SemiJoinTransform(_)
            )
            && out.iter().any(|v| v.is_null())
        {
            self.fire(FaultKind::AntiJoinMaterializationNullDrop);
            out.retain(|v| !v.is_null());
        }
        Ok(out)
    }
}

impl SubqueryHandler for EngineSubqueries<'_> {
    fn eval_subquery(
        &self,
        stmt: &SelectStmt,
        outer: &dyn ColumnResolver,
    ) -> Result<Vec<Value>, EvalError> {
        let cacheable = self
            .db
            .catalog
            .table(&stmt.from.base.table)
            .map(|t| {
                stmt.is_uncorrelated_single_table(&|name| {
                    t.columns.iter().any(|c| c.name.eq_ignore_ascii_case(name))
                })
            })
            .unwrap_or(false);
        self.memo
            .get_or_eval(stmt, cacheable, || self.eval_subquery_inner(stmt, outer))
    }
}

/// Borrow-based resolver over one stored table row (subquery scans): the
/// same resolution rules as a scanned relation's scope, without cloning the
/// table or materializing per-row scope entries.
struct TableRow<'a> {
    binding: &'a str,
    table: &'a tqs_storage::Table,
    row: &'a [Value],
}

impl ColumnResolver for TableRow<'_> {
    fn resolve(&self, col: &ColumnRef) -> Option<Value> {
        if let Some(q) = &col.table {
            if !q.eq_ignore_ascii_case(self.binding) {
                return None;
            }
        }
        self.table
            .columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(&col.column))
            .map(|i| self.row[i].clone())
    }
}

/// Split equality conjuncts out of a predicate; returns (remaining, dropped?).
fn strip_equality_conjuncts(e: &Expr) -> (Option<Expr>, bool) {
    let mut conjuncts = Vec::new();
    flatten_and(e, &mut conjuncts);
    let kept: Vec<Expr> = conjuncts
        .iter()
        .filter(|c| !matches!(c, Expr::Binary { op: BinOp::Eq, .. }))
        .map(|c| (*c).clone())
        .collect();
    let dropped = kept.len() != conjuncts.len();
    (Expr::conjunction(kept), dropped)
}

pub(crate) fn distinct(rs: ResultSet) -> ResultSet {
    rs.into_distinct()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DbmsProfile, ProfileId};
    use tqs_sql::types::{ColumnDef, ColumnType};
    use tqs_storage::Table;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mut t1 = Table::new(
            "t1",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Int { unsigned: false }),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c) in [(1, Some(10)), (2, Some(20)), (3, None)] {
            t1.push_row(Row::new(vec![
                Value::Int(id),
                c.map(Value::Int).unwrap_or(Value::Null),
            ]))
            .unwrap();
        }
        cat.add_table(t1);
        let mut t2 = Table::new(
            "t2",
            vec![
                ColumnDef::new("id", ColumnType::BigInt { unsigned: false }).not_null(),
                ColumnDef::new("col1", ColumnType::Varchar(100)),
            ],
        )
        .with_primary_key(vec!["id"]);
        for (id, c) in [(10, "a"), (20, "b"), (30, "c")] {
            t2.push_row(Row::new(vec![Value::Int(id), Value::str(c)]))
                .unwrap();
        }
        cat.add_table(t2);
        cat
    }

    fn db(profile: ProfileId) -> Database {
        Database::new(catalog(), DbmsProfile::pristine(profile))
    }

    #[test]
    fn single_table_select_and_where() {
        let d = db(ProfileId::MysqlLike);
        let out = d
            .execute_sql("SELECT t1.id FROM t1 WHERE t1.col1 > 10")
            .unwrap();
        assert_eq!(out.result.row_count(), 1);
        assert!(out.fired.is_empty());
    }

    #[test]
    fn inner_join_across_profiles_gives_same_answer_when_pristine() {
        let sql = "SELECT t1.id, t2.col1 FROM t1 INNER JOIN t2 ON t1.col1 = t2.id";
        let mut results = Vec::new();
        for p in ProfileId::ALL {
            let out = db(p).execute_sql(sql).unwrap();
            results.push(out.result);
        }
        for r in &results[1..] {
            assert!(results[0].same_bag(r));
        }
        assert_eq!(results[0].row_count(), 2);
    }

    #[test]
    fn hints_change_the_physical_plan() {
        let d = db(ProfileId::MysqlLike);
        let base = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let hash = d.plan(&base).unwrap();
        let merge = d
            .plan(
                &parse_stmt(
                    "SELECT /*+ MERGE_JOIN(t2) */ t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id",
                )
                .unwrap(),
            )
            .unwrap();
        assert_ne!(hash.signature(), merge.signature());
        assert_eq!(merge.joins[0].algo, JoinAlgo::SortMergeJoin);
        let nl = d
            .plan(
                &parse_stmt("SELECT /*+ NL_JOIN(t2) */ t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id")
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(nl.joins[0].algo, JoinAlgo::BlockNestedLoop);
        // and the result stays the same on a pristine build
        let a = d.execute(&base).unwrap().result;
        let b = d
            .execute_sql("SELECT /*+ MERGE_JOIN(t2) */ t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id")
            .unwrap()
            .result;
        assert!(a.same_bag(&b));
    }

    #[test]
    fn switches_change_mariadb_algorithms() {
        let mut d = db(ProfileId::MariadbLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let default_algo = d.plan(&stmt).unwrap().joins[0].algo;
        assert_eq!(default_algo, JoinAlgo::BatchedKeyAccess);
        d.apply_switch(SessionSwitch::off(SwitchName::JoinCacheBka));
        assert_eq!(
            d.plan(&stmt).unwrap().joins[0].algo,
            JoinAlgo::BlockNestedLoopHashed
        );
        d.apply_switch(SessionSwitch::off(SwitchName::JoinCacheHashed));
        assert_eq!(
            d.plan(&stmt).unwrap().joins[0].algo,
            JoinAlgo::BlockNestedLoop
        );
        d.reset_switches();
        assert_eq!(
            d.plan(&stmt).unwrap().joins[0].algo,
            JoinAlgo::BatchedKeyAccess
        );
    }

    #[test]
    fn left_outer_join_simplification() {
        let d = db(ProfileId::XdbLike);
        let stmt = parse_stmt(
            "SELECT t1.id FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id WHERE t2.col1 = 'a'",
        )
        .unwrap();
        let plan = d.plan(&stmt).unwrap();
        assert!(plan.joins[0].simplified_from_outer);
        assert_eq!(plan.joins[0].join_type, JoinType::Inner);
        // without the null-rejecting predicate the outer join survives
        let stmt =
            parse_stmt("SELECT t1.id FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id").unwrap();
        assert!(!d.plan(&stmt).unwrap().joins[0].simplified_from_outer);
        // simplification does not change results on a pristine build
        let simplified = parse_stmt(
            "SELECT t1.id FROM t1 LEFT OUTER JOIN t2 ON t1.col1 = t2.id WHERE t2.col1 = 'a'",
        )
        .unwrap();
        let out = d.execute(&simplified).unwrap();
        assert_eq!(out.result.row_count(), 1);
    }

    #[test]
    fn join_order_hint_validity() {
        let d = db(ProfileId::MysqlLike);
        let stmt =
            parse_stmt("SELECT /*+ JOIN_ORDER(t2, t1) */ t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id")
                .unwrap();
        let plan = d.plan(&stmt).unwrap();
        assert!(plan.notes.iter().any(|n| n.contains("JOIN_ORDER")));
        let out = d.execute(&stmt).unwrap();
        assert_eq!(out.result.row_count(), 2);
    }

    #[test]
    fn execute_with_hints_restores_switches() {
        let mut d = db(ProfileId::MariadbLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let hs = HintSet::new("bnl")
            .with_switch(SessionSwitch::off(SwitchName::JoinCacheBka))
            .with_switch(SessionSwitch::off(SwitchName::JoinCacheHashed));
        let out = d.execute_with_hints(&stmt, &hs).unwrap();
        assert_eq!(out.result.row_count(), 2);
        // switches restored afterwards
        assert_eq!(
            d.plan(&stmt).unwrap().joins[0].algo,
            JoinAlgo::BatchedKeyAccess
        );
    }

    #[test]
    fn in_subquery_and_not_in_null_semantics() {
        let d = db(ProfileId::MysqlLike);
        let inq = d
            .execute_sql("SELECT t1.id FROM t1 WHERE t1.col1 IN (SELECT t2.id FROM t2)")
            .unwrap();
        assert_eq!(inq.result.row_count(), 2);
        // NOT IN over a set that contains no NULLs
        let notin = d
            .execute_sql("SELECT t1.id FROM t1 WHERE t1.id NOT IN (SELECT t2.id FROM t2)")
            .unwrap();
        assert_eq!(notin.result.row_count(), 3);
        // NOT IN over a set containing NULL → empty (col1 of t1 has a NULL)
        let notin_null = d
            .execute_sql("SELECT t1.id FROM t1 WHERE t1.id NOT IN (SELECT t1.col1 FROM t1)")
            .unwrap();
        assert_eq!(notin_null.result.row_count(), 0);
    }

    #[test]
    fn semi_join_wrong_results_fault_changes_subquery_answer() {
        let mut faulty = Database::new(catalog(), DbmsProfile::build(ProfileId::MysqlLike));
        faulty.profile.default_semijoin_transform = true;
        let sql = "SELECT t1.id FROM t1 WHERE t1.col1 IN \
                   (SELECT t2.id FROM t2 WHERE t2.col1 = 'zzz')";
        let out = faulty.execute_sql(sql).unwrap();
        // correct answer: empty (no t2.col1 = 'zzz'); the fault drops the
        // equality and returns rows
        assert!(out.fired.contains(&FaultKind::SemiJoinWrongResults));
        assert!(out.result.row_count() > 0);
        let pristine = db(ProfileId::MysqlLike).execute_sql(sql).unwrap();
        assert_eq!(pristine.result.row_count(), 0);
    }

    #[test]
    fn group_by_and_aggregates() {
        let d = db(ProfileId::TidbLike);
        let out = d
            .execute_sql(
                "SELECT t2.col1, COUNT(*) AS cnt FROM t1 JOIN t2 ON t1.col1 = t2.id GROUP BY t2.col1",
            )
            .unwrap();
        assert_eq!(out.result.row_count(), 2);
        let out = d
            .execute_sql("SELECT COUNT(*) AS cnt FROM t1 JOIN t2 ON t1.col1 = t2.id")
            .unwrap();
        assert_eq!(out.result.rows[0].values[0], Value::Int(2));
    }

    #[test]
    fn distinct_and_limit() {
        let d = db(ProfileId::MysqlLike);
        let out = d
            .execute_sql("SELECT DISTINCT t2.col1 FROM t2 JOIN t1 ON t2.id = t1.col1")
            .unwrap();
        assert_eq!(out.result.row_count(), 2);
        let out = d.execute_sql("SELECT t2.col1 FROM t2 LIMIT 2").unwrap();
        assert_eq!(out.result.row_count(), 2);
    }

    #[test]
    fn errors_for_unknown_tables_and_bad_sql() {
        let d = db(ProfileId::MysqlLike);
        assert!(matches!(
            d.execute_sql("SELECT x.a FROM missing x"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            d.execute_sql("SELEKT 1"),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn explain_mentions_chosen_algorithm() {
        let d = db(ProfileId::TidbLike);
        let stmt = parse_stmt("SELECT t1.id FROM t1 JOIN t2 ON t1.col1 = t2.id").unwrap();
        let e = d.explain(&stmt).unwrap();
        assert!(e.contains("index lookup join") || e.contains("hash join"));
    }
}
