//! The fault-injection catalog.
//!
//! Real DBMSs carry latent optimizer bugs; we cannot ship MySQL 8.0.28's
//! actual defects, so each of the 20 bug types of Table 4 is modeled as a
//! *fault*: a small, deliberately-wrong behaviour wired into one specific
//! physical execution path (a join algorithm, a subquery strategy, a join
//! buffer, an outer-join simplification). A fault only fires when the
//! optimizer actually chooses that path for data that hits the corner case —
//! exactly the triggering structure of the real bugs, which is why hint-based
//! plan steering plus ground-truth verification is needed to expose them.
//!
//! The bug *detector* (TQS and the baselines) never sees which faults exist
//! or fired; it only sees result sets. Fired-fault provenance is recorded so
//! the benchmark harness can reproduce Table 4's per-type counts, playing the
//! role of the paper's developer root-cause analysis.

use crate::plan::JoinAlgo;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tqs_sql::ast::JoinType;
use tqs_sql::hints::SemiJoinStrategy;

/// Severity labels as used in Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    Critical,
    Serious,
    Major,
    High,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Critical => "S1 (Critical)",
            Severity::Serious => "S2 (Serious)",
            Severity::Major => "Major",
            Severity::High => "2 (High)",
        }
    }
}

/// The 20 bug types of Table 4, one enum variant each. The variant names
/// paraphrase the paper's descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    // --- MySQL-like (7 types) ---
    /// #1: semi-join gives wrong results (equality not evaluated as part of
    /// the semi-join when materialization is used).
    SemiJoinWrongResults,
    /// #2: incorrect inner hash join when using the materialization strategy
    /// (0 and -0 hash to different buckets).
    HashJoinMaterializationZeroSplit,
    /// #3: incorrect semi-join execution returns unknown data (first-match
    /// shortcut emits build-side values).
    SemiJoinUnknownData,
    /// #4: incorrect left hash join with subquery in condition (extra NULL
    /// row emitted).
    LeftHashJoinSubqueryNull,
    /// #5: incorrect nested-loop anti-join when using materialization
    /// (NULLs dropped from the NOT IN probe set).
    AntiJoinMaterializationNullDrop,
    /// #6: bad caching of converted constants in NULL-safe comparison.
    ConstantCacheNullSafeEq,
    /// #7: incorrect hash join with materialized subquery (varchar keys
    /// compared through double, losing precision).
    HashJoinVarcharViaDouble,

    // --- MariaDB-like (5 types) ---
    /// #8: wrong join when BKA/BKAH are disallowed (NULL turned into empty
    /// string by the fallback buffer).
    BkaDisallowedNullToEmpty,
    /// #9: wrong join when BNLH/BKAH are disallowed (varchar values blanked).
    BnlhDisallowedBlankValues,
    /// #10: wrong join when controlling outer join operations
    /// (outer-join cache pads with empty string instead of NULL).
    OuterJoinCacheEmptyPad,
    /// #11: wrong join when limiting the usage of the join buffers (tail rows
    /// beyond the buffer are dropped).
    JoinBufferLimitDropsTail,
    /// #12: wrong join when controlling the join cache (incremental cache
    /// replays a stale row).
    JoinCacheStaleRow,

    // --- TiDB-like (5 types) ---
    /// #13: wrong merge join when transforming hash join to merge join
    /// (outer merge join loses the inner child's NULL rows).
    MergeJoinOuterNullLoss,
    /// #14: merge join misses -0 (ordering puts -0 before 0 and the cursor
    /// never matches them).
    MergeJoinNegativeZeroMiss,
    /// #15: merge join returns an empty result set (collation mismatch on
    /// varchar keys).
    MergeJoinVarcharEmpty,
    /// #16: merge join returns NULL instead of the value.
    MergeJoinNullInsteadOfValue,
    /// #17: merge join misses rows (last duplicate run dropped).
    MergeJoinDropsLastRun,

    // --- X-DB-like (3 types) ---
    /// #18: left join converted to inner join returns wrong result sets
    /// (the converted join cannot distinguish NULL from 0).
    LeftToInnerNullZeroConfusion,
    /// #19: hash join returns wrong result sets (NULL keys match empty
    /// strings).
    HashJoinNullMatchesEmpty,
    /// #20: incorrect semi-join with materialize execution (float keys
    /// compared after lossy f32 round-trip).
    SemiJoinFloatPrecision,

    // --- Columnar-engine complement (not part of Table 4) ---
    //
    // The second simulated engine executes batch-at-a-time over column
    // vectors; its latent faults live in the batching machinery rather than
    // in any row-at-a-time join algorithm, so cross-engine differential
    // testing between the two builds is meaningful: the complements are
    // disjoint, and neither engine can reproduce the other's bugs.
    /// C1: the final partial probe batch is never flushed, dropping the tail
    /// rows of hashed joins whenever the probe side is not a whole number of
    /// batches.
    ColumnarBatchTailDrop,
    /// C2: the outer-join NULL mask is misaligned by one row, so the first
    /// padded output row replays build-side values instead of NULLs.
    ColumnarNullPadMisalign,
    /// C3: the dictionary encoder truncates varchar join keys to their first
    /// 8 bytes, letting long keys with a shared prefix collide.
    ColumnarDictTruncation,
    /// C4: the selection bitmap is initialized to all-ones and the lane of
    /// the last row in a full batch is never cleared, so a predicate that
    /// evaluates to NULL there is treated as TRUE.
    ColumnarFilterNullAsTrue,

    // --- Disk-engine complement (not part of Table 4) ---
    //
    // The third simulated engine scans its tables out of a disk-backed page
    // store (buffer pool + WAL + B+tree heaps); its latent faults live in
    // that storage machinery — torn writes, lost WAL records, stale buffer
    // frames, split bookkeeping, redo replay — rather than in any join
    // algorithm or batching pipeline, so the three engines' complements are
    // pairwise disjoint and three-way differential testing is meaningful.
    /// D1: a torn page write persists only the first half of the tail leaf's
    /// cells, silently dropping the rows in its second half.
    DiskTornPageWrite,
    /// D2: the WAL record of the last commit batch is lost before `fsync`,
    /// so the whole batch vanishes despite the commit having returned.
    DiskWalLostBeforeFsync,
    /// D3: the buffer pool serves the first-flushed (stale) version of an
    /// evicted-then-reloaded leaf, hiding every row appended to it since.
    DiskStaleFrameRead,
    /// D4: a B+tree leaf split loses its high key — the last cell of every
    /// split-origin leaf never makes it to the new sibling.
    DiskSplitHighKeyLoss,
    /// D5: redo recovery replays the last commit record twice, duplicating
    /// the first row of the batch.
    DiskRecoveryDoubleReplay,

    // --- Optimizer complement (not part of Table 4) ---
    //
    // These faults live in the harness-side cost-based plan enumerator
    // (`tqs-optimizer`), not in any engine execution path: the rewrite,
    // costing and memoization passes that turn one statement into a plan
    // space. They are exposed by the `PlanSpaceOracle` (result divergence,
    // cost-sanity and hint-conformance checks over the enumerated plans), so
    // the fourth complement stays pairwise disjoint from all three engines'.
    /// O1: the DP join enumerator's cost comparison is inverted, so the
    /// "best" plan it reports is the most expensive enumerated order.
    OptInvertedCostComparison,
    /// O2: predicate pushdown drops its join-type precondition and pushes
    /// WHERE conjuncts into the ON clause of non-inner joins, turning
    /// filtered rows into NULL-padded (outer) or anti-matched survivors.
    OptDroppedRewritePrecondition,
    /// O3: a WHERE conjunct referencing only the right side of a LEFT OUTER
    /// join is pushed past the outer-join boundary into that join's ON,
    /// keeping (padded) rows the filter should have removed.
    OptPushdownPastOuterJoin,
    /// O4: after predicate pruning the enumerator ranks join orders with the
    /// stale pre-pushdown cardinalities while stamping fresh costs on the
    /// plans it reports, so the reported best is not the reported argmin.
    OptStaleCardinalityAfterPruning,
    /// O5: the hint-set memo is keyed by a truncated plan hash; colliding
    /// plans silently reuse another order's JOIN_ORDER hint set, so the
    /// executed plan is not the plan the enumerator claims.
    OptHintIgnoredUnderMemoCollision,

    // --- DML / transaction complement (not part of Table 4) ---
    //
    // The mutation workload executes INSERT/UPDATE/DELETE and transaction
    // blocks through a shared DML executor; its latent faults live in index
    // maintenance, predicate-driven row selection and commit/rollback
    // visibility rather than in any join algorithm, storage page or plan
    // enumeration pass, so the fifth complement stays pairwise disjoint from
    // every other build's. They are fired by the DML executor itself (never
    // from a TriggerContext) and exposed by the mutation oracle comparing
    // post-statement table contents against the maintained ground truth.
    /// M1: an UPDATE touching a keyed column leaves the first matching row's
    /// value stale — the index entry moves but the heap cell is never
    /// rewritten.
    DmlStaleIndexAfterUpdate,
    /// M2: DELETE skips matching rows whose WHERE-referenced column is NULL
    /// (the row matched via IS NULL, but the delete scan treats NULL keys as
    /// non-matching).
    DmlDeleteSkipsNullKey,
    /// M3: an UPDATE assigning a column that the WHERE clause never reads
    /// loses the write for every matching row after the first — the pruned
    /// column is missing from the scan's write-back projection.
    DmlLostUpdateThroughPrunedColumn,
    /// M4: ROLLBACK leaks the transaction's first inserted row — the undo pass
    /// restores the snapshot but replays one insert on top of it.
    DmlRollbackLeaksInsertedRow,
    /// M5: COMMIT publishes a torn prefix — the transaction's last mutation
    /// is dropped at the visibility switch-over.
    DmlCommitBoundaryTornVisibility,
}

impl FaultKind {
    pub const ALL: [FaultKind; 20] = [
        FaultKind::SemiJoinWrongResults,
        FaultKind::HashJoinMaterializationZeroSplit,
        FaultKind::SemiJoinUnknownData,
        FaultKind::LeftHashJoinSubqueryNull,
        FaultKind::AntiJoinMaterializationNullDrop,
        FaultKind::ConstantCacheNullSafeEq,
        FaultKind::HashJoinVarcharViaDouble,
        FaultKind::BkaDisallowedNullToEmpty,
        FaultKind::BnlhDisallowedBlankValues,
        FaultKind::OuterJoinCacheEmptyPad,
        FaultKind::JoinBufferLimitDropsTail,
        FaultKind::JoinCacheStaleRow,
        FaultKind::MergeJoinOuterNullLoss,
        FaultKind::MergeJoinNegativeZeroMiss,
        FaultKind::MergeJoinVarcharEmpty,
        FaultKind::MergeJoinNullInsteadOfValue,
        FaultKind::MergeJoinDropsLastRun,
        FaultKind::LeftToInnerNullZeroConfusion,
        FaultKind::HashJoinNullMatchesEmpty,
        FaultKind::SemiJoinFloatPrecision,
    ];

    /// The columnar engine's fault complement (ids 21..=24, outside Table 4).
    pub const COLUMNAR: [FaultKind; 4] = [
        FaultKind::ColumnarBatchTailDrop,
        FaultKind::ColumnarNullPadMisalign,
        FaultKind::ColumnarDictTruncation,
        FaultKind::ColumnarFilterNullAsTrue,
    ];

    /// The disk engine's fault complement (ids 25..=29, outside Table 4).
    pub const DISK: [FaultKind; 5] = [
        FaultKind::DiskTornPageWrite,
        FaultKind::DiskWalLostBeforeFsync,
        FaultKind::DiskStaleFrameRead,
        FaultKind::DiskSplitHighKeyLoss,
        FaultKind::DiskRecoveryDoubleReplay,
    ];

    /// The optimizer's fault complement (ids 30..=34, outside Table 4).
    /// These are seeded into the plan enumerator, never into an engine build.
    pub const OPTIMIZER: [FaultKind; 5] = [
        FaultKind::OptInvertedCostComparison,
        FaultKind::OptDroppedRewritePrecondition,
        FaultKind::OptPushdownPastOuterJoin,
        FaultKind::OptStaleCardinalityAfterPruning,
        FaultKind::OptHintIgnoredUnderMemoCollision,
    ];

    /// The DML / transaction fault complement (ids 35..=39, outside Table 4).
    /// Fired by the shared DML executor, never from a TriggerContext.
    pub const DML: [FaultKind; 5] = [
        FaultKind::DmlStaleIndexAfterUpdate,
        FaultKind::DmlDeleteSkipsNullKey,
        FaultKind::DmlLostUpdateThroughPrunedColumn,
        FaultKind::DmlRollbackLeaksInsertedRow,
        FaultKind::DmlCommitBoundaryTornVisibility,
    ];

    /// The Table 4 row id (1-based); the columnar complement continues the
    /// numbering at 21, the disk complement at 25, the optimizer complement
    /// at 30 and the DML complement at 35.
    pub fn table4_id(self) -> u32 {
        if let Some(i) = FaultKind::ALL.iter().position(|f| *f == self) {
            i as u32 + 1
        } else if let Some(i) = FaultKind::COLUMNAR.iter().position(|f| *f == self) {
            i as u32 + 21
        } else if let Some(i) = FaultKind::DISK.iter().position(|f| *f == self) {
            i as u32 + 25
        } else if let Some(i) = FaultKind::OPTIMIZER.iter().position(|f| *f == self) {
            i as u32 + 30
        } else {
            let i = FaultKind::DML.iter().position(|f| *f == self).unwrap();
            i as u32 + 35
        }
    }

    /// The DBMS build this bug type is attributed to.
    pub fn dbms(self) -> &'static str {
        match self.table4_id() {
            1..=7 => "MySQL-like",
            8..=12 => "MariaDB-like",
            13..=17 => "TiDB-like",
            18..=20 => "X-DB-like",
            21..=24 => "Columnar",
            25..=29 => "Disk",
            30..=34 => "Optimizer",
            _ => "DML",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            FaultKind::SemiJoinWrongResults => Severity::Critical,
            FaultKind::ColumnarBatchTailDrop => Severity::Critical,
            FaultKind::ColumnarNullPadMisalign => Severity::Serious,
            FaultKind::ColumnarDictTruncation => Severity::Major,
            FaultKind::ColumnarFilterNullAsTrue => Severity::Serious,
            FaultKind::DiskTornPageWrite => Severity::Critical,
            FaultKind::DiskWalLostBeforeFsync => Severity::Critical,
            FaultKind::DiskStaleFrameRead => Severity::Serious,
            FaultKind::DiskSplitHighKeyLoss => Severity::Major,
            FaultKind::DiskRecoveryDoubleReplay => Severity::Serious,
            FaultKind::OptInvertedCostComparison => Severity::Major,
            FaultKind::OptDroppedRewritePrecondition => Severity::Critical,
            FaultKind::OptPushdownPastOuterJoin => Severity::Critical,
            FaultKind::OptStaleCardinalityAfterPruning => Severity::Major,
            FaultKind::OptHintIgnoredUnderMemoCollision => Severity::Serious,
            FaultKind::DmlStaleIndexAfterUpdate => Severity::Critical,
            FaultKind::DmlDeleteSkipsNullKey => Severity::Serious,
            FaultKind::DmlLostUpdateThroughPrunedColumn => Severity::Critical,
            FaultKind::DmlRollbackLeaksInsertedRow => Severity::Serious,
            FaultKind::DmlCommitBoundaryTornVisibility => Severity::Critical,
            f if f.table4_id() <= 7 => Severity::Serious,
            f if f.table4_id() <= 12 => Severity::Major,
            f if f.table4_id() <= 17 => Severity::Critical,
            _ => Severity::High,
        }
    }

    pub fn description(self) -> &'static str {
        match self {
            FaultKind::SemiJoinWrongResults => "Semi-join gives wrong results.",
            FaultKind::HashJoinMaterializationZeroSplit => {
                "Incorrect inner hash join when using materialization strategy."
            }
            FaultKind::SemiJoinUnknownData => {
                "Incorrect semi-join execution results in unknown data."
            }
            FaultKind::LeftHashJoinSubqueryNull => {
                "Incorrect left hash join with subquery in condition."
            }
            FaultKind::AntiJoinMaterializationNullDrop => {
                "Incorrect nested loop antijoin when using materialization strategy."
            }
            FaultKind::ConstantCacheNullSafeEq => {
                "Bad caching of converted constants in NULL-safe comparison."
            }
            FaultKind::HashJoinVarcharViaDouble => {
                "Incorrect hash join with materialized subquery."
            }
            FaultKind::BkaDisallowedNullToEmpty => {
                "Incorrect join execution by not allowing BKA and BKAH join algorithms."
            }
            FaultKind::BnlhDisallowedBlankValues => {
                "Incorrect join execution by not allowing BNLH and BKAH join algorithms."
            }
            FaultKind::OuterJoinCacheEmptyPad => {
                "Incorrect join execution when controlling outer join operations."
            }
            FaultKind::JoinBufferLimitDropsTail => {
                "Incorrect join execution by limiting the usage of the join buffers."
            }
            FaultKind::JoinCacheStaleRow => "Incorrect join execution when controlling join cache.",
            FaultKind::MergeJoinOuterNullLoss => {
                "Incorrect Merge Join Execution when transforming hash join to merge join."
            }
            FaultKind::MergeJoinNegativeZeroMiss => {
                "Merge Join executed incorrect resultset which missed -0."
            }
            FaultKind::MergeJoinVarcharEmpty => {
                "Merge Join executed an incorrect resultset which returned an empty resultset."
            }
            FaultKind::MergeJoinNullInsteadOfValue => {
                "Merge Join executed an incorrect resultset which returned NULL."
            }
            FaultKind::MergeJoinDropsLastRun => {
                "Merge Join executed an incorrect resultset which missed rows."
            }
            FaultKind::LeftToInnerNullZeroConfusion => {
                "Left join convert to inner join returns wrong result sets."
            }
            FaultKind::HashJoinNullMatchesEmpty => "Hash join returns wrong result sets.",
            FaultKind::SemiJoinFloatPrecision => "Incorrect semi-join with materialize execution.",
            FaultKind::ColumnarBatchTailDrop => {
                "Columnar hashed join drops the final partial probe batch."
            }
            FaultKind::ColumnarNullPadMisalign => {
                "Columnar outer join misaligns the NULL mask on the first padded row."
            }
            FaultKind::ColumnarDictTruncation => {
                "Columnar dictionary encoding truncates long varchar join keys."
            }
            FaultKind::ColumnarFilterNullAsTrue => {
                "Columnar filter treats a NULL predicate as TRUE on the last batch lane."
            }
            FaultKind::DiskTornPageWrite => {
                "Torn page write drops the second half of the tail leaf's rows."
            }
            FaultKind::DiskWalLostBeforeFsync => {
                "WAL record of the last commit batch lost before fsync."
            }
            FaultKind::DiskStaleFrameRead => {
                "Buffer pool serves the stale first-flushed version of an evicted leaf."
            }
            FaultKind::DiskSplitHighKeyLoss => {
                "B+tree leaf split loses the high key of every split-origin leaf."
            }
            FaultKind::DiskRecoveryDoubleReplay => {
                "Redo recovery replays the last commit record twice."
            }
            FaultKind::OptInvertedCostComparison => {
                "Plan enumerator's inverted cost comparison reports the most expensive order as best."
            }
            FaultKind::OptDroppedRewritePrecondition => {
                "Predicate pushdown drops its inner-join precondition and rewrites non-inner ON clauses."
            }
            FaultKind::OptPushdownPastOuterJoin => {
                "Right-side filter pushed past a LEFT OUTER JOIN boundary into the join condition."
            }
            FaultKind::OptStaleCardinalityAfterPruning => {
                "Join orders ranked with stale pre-pushdown cardinalities but reported with fresh costs."
            }
            FaultKind::OptHintIgnoredUnderMemoCollision => {
                "Hint-set memo collision makes a plan reuse another order's JOIN_ORDER hints."
            }
            FaultKind::DmlStaleIndexAfterUpdate => {
                "UPDATE on a keyed column leaves the first matching row's heap value stale."
            }
            FaultKind::DmlDeleteSkipsNullKey => {
                "DELETE skips matching rows whose WHERE-referenced column is NULL."
            }
            FaultKind::DmlLostUpdateThroughPrunedColumn => {
                "UPDATE through a pruned write-back projection loses every write after the first."
            }
            FaultKind::DmlRollbackLeaksInsertedRow => {
                "ROLLBACK leaks the transaction's first inserted row."
            }
            FaultKind::DmlCommitBoundaryTornVisibility => {
                "COMMIT publishes a torn prefix that drops the transaction's last mutation."
            }
        }
    }

    /// Status as reported in Table 4 (the columnar, disk and optimizer
    /// complements are seeded by this reproduction, not taken from the paper).
    pub fn status(self) -> &'static str {
        match self.table4_id() {
            1 | 2 | 6 | 13 | 14 | 15 | 16 | 17 | 18 | 19 => "Fixed",
            21..=39 => "Seeded",
            _ => "Verified",
        }
    }
}

/// Execution-path facts a fault trigger can condition on. Filled in by the
/// executor at each interception point.
#[derive(Debug, Clone, Default)]
pub struct TriggerContext {
    pub algo: Option<JoinAlgo>,
    pub join_type: Option<JoinType>,
    pub semi_strategy: Option<SemiJoinStrategy>,
    pub materialization: bool,
    pub subquery_present: bool,
    pub simplified_from_outer: bool,
    pub uses_join_buffer: bool,
    /// Switch names that the current session turned OFF.
    pub switched_off: Vec<&'static str>,
}

impl TriggerContext {
    pub fn switched_off(&self, name: &str) -> bool {
        self.switched_off.contains(&name)
    }
}

impl FaultKind {
    /// Is this fault's execution-path trigger satisfied? (The data-dependent
    /// part of the corner case lives in the executor's behaviour itself.)
    pub fn triggered(self, ctx: &TriggerContext) -> bool {
        use FaultKind::*;
        match self {
            SemiJoinWrongResults => {
                ctx.semi_strategy == Some(SemiJoinStrategy::Materialization) && ctx.subquery_present
            }
            HashJoinMaterializationZeroSplit => {
                ctx.algo == Some(JoinAlgo::HashJoin) && ctx.materialization
            }
            SemiJoinUnknownData => {
                ctx.join_type == Some(JoinType::Semi)
                    && ctx.semi_strategy == Some(SemiJoinStrategy::FirstMatch)
            }
            LeftHashJoinSubqueryNull => {
                ctx.algo == Some(JoinAlgo::HashJoin)
                    && ctx.join_type == Some(JoinType::LeftOuter)
                    && ctx.subquery_present
            }
            AntiJoinMaterializationNullDrop => {
                ctx.join_type == Some(JoinType::Anti) && ctx.materialization
            }
            ConstantCacheNullSafeEq => true, // purely data/expression dependent
            HashJoinVarcharViaDouble => ctx.algo == Some(JoinAlgo::HashJoin) && ctx.materialization,
            BkaDisallowedNullToEmpty => {
                ctx.switched_off("join_cache_bka") && ctx.algo == Some(JoinAlgo::BlockNestedLoop)
            }
            BnlhDisallowedBlankValues => {
                ctx.switched_off("join_cache_hashed") && ctx.algo == Some(JoinAlgo::BlockNestedLoop)
            }
            OuterJoinCacheEmptyPad => {
                ctx.uses_join_buffer
                    && matches!(
                        ctx.join_type,
                        Some(JoinType::LeftOuter) | Some(JoinType::RightOuter)
                    )
            }
            JoinBufferLimitDropsTail => ctx.uses_join_buffer,
            JoinCacheStaleRow => {
                ctx.uses_join_buffer && ctx.algo == Some(JoinAlgo::BatchedKeyAccess)
            }
            MergeJoinOuterNullLoss => {
                ctx.algo == Some(JoinAlgo::SortMergeJoin)
                    && matches!(
                        ctx.join_type,
                        Some(JoinType::LeftOuter) | Some(JoinType::RightOuter)
                    )
            }
            MergeJoinNegativeZeroMiss
            | MergeJoinVarcharEmpty
            | MergeJoinNullInsteadOfValue
            | MergeJoinDropsLastRun => ctx.algo == Some(JoinAlgo::SortMergeJoin),
            LeftToInnerNullZeroConfusion => ctx.simplified_from_outer,
            HashJoinNullMatchesEmpty => ctx.algo == Some(JoinAlgo::HashJoin),
            SemiJoinFloatPrecision => {
                matches!(ctx.join_type, Some(JoinType::Semi)) && !ctx.materialization
            }
            // Columnar complement: the batching faults live in the hashed
            // probe pipeline, the NULL-mask fault in outer-join padding, and
            // the selection-bitmap fault is purely data dependent.
            ColumnarBatchTailDrop | ColumnarDictTruncation => {
                ctx.algo.map(|a| a.uses_hashed_keys()).unwrap_or(false)
            }
            ColumnarNullPadMisalign => matches!(
                ctx.join_type,
                Some(JoinType::LeftOuter) | Some(JoinType::RightOuter) | Some(JoinType::FullOuter)
            ),
            ColumnarFilterNullAsTrue => true,
            // Disk complement: the corruption lives in the page store, but
            // whether a query *observes* it depends on which access path the
            // optimizer picks over the damaged heap — the same steer-to-expose
            // structure as every other fault in the catalog.
            DiskTornPageWrite => ctx.algo.is_some(),
            DiskWalLostBeforeFsync => {
                matches!(ctx.join_type, Some(JoinType::Inner) | Some(JoinType::Cross))
            }
            DiskStaleFrameRead => ctx.algo.map(|a| a.uses_hashed_keys()).unwrap_or(false),
            DiskSplitHighKeyLoss => matches!(
                ctx.algo,
                Some(JoinAlgo::SortMergeJoin) | Some(JoinAlgo::IndexJoin)
            ),
            DiskRecoveryDoubleReplay => ctx.subquery_present || ctx.simplified_from_outer,
            // Optimizer complement: these faults live in the harness-side
            // plan enumerator (`tqs-optimizer`), which consults the fault set
            // directly; they have no engine execution path and never fire
            // from a TriggerContext.
            OptInvertedCostComparison
            | OptDroppedRewritePrecondition
            | OptPushdownPastOuterJoin
            | OptStaleCardinalityAfterPruning
            | OptHintIgnoredUnderMemoCollision => false,
            // DML complement: fired explicitly by the DML executor while
            // applying a mutation, not by any SELECT execution path.
            DmlStaleIndexAfterUpdate
            | DmlDeleteSkipsNullKey
            | DmlLostUpdateThroughPrunedColumn
            | DmlRollbackLeaksInsertedRow
            | DmlCommitBoundaryTornVisibility => false,
        }
    }
}

/// The set of faults compiled into one simulated DBMS build.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultSet {
    enabled: HashSet<FaultKind>,
}

impl FaultSet {
    pub fn none() -> Self {
        FaultSet::default()
    }

    pub fn of(kinds: &[FaultKind]) -> Self {
        FaultSet {
            enabled: kinds.iter().copied().collect(),
        }
    }

    pub fn all() -> Self {
        FaultSet::of(&FaultKind::ALL)
    }

    pub fn enable(&mut self, kind: FaultKind) {
        self.enabled.insert(kind);
    }

    pub fn disable(&mut self, kind: FaultKind) {
        self.enabled.remove(&kind);
    }

    pub fn contains(&self, kind: FaultKind) -> bool {
        self.enabled.contains(&kind)
    }

    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Is `kind` both enabled and triggered in this context?
    pub fn active(&self, kind: FaultKind, ctx: &TriggerContext) -> bool {
        self.contains(kind) && kind.triggered(ctx)
    }

    pub fn kinds(&self) -> Vec<FaultKind> {
        let mut v: Vec<FaultKind> = self.enabled.iter().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_4_structure() {
        assert_eq!(FaultKind::ALL.len(), 20);
        let per_dbms = |d: &str| FaultKind::ALL.iter().filter(|f| f.dbms() == d).count();
        assert_eq!(per_dbms("MySQL-like"), 7);
        assert_eq!(per_dbms("MariaDB-like"), 5);
        assert_eq!(per_dbms("TiDB-like"), 5);
        assert_eq!(per_dbms("X-DB-like"), 3);
        // ids are 1..=20 and unique
        let ids: HashSet<u32> = FaultKind::ALL.iter().map(|f| f.table4_id()).collect();
        assert_eq!(ids.len(), 20);
        assert!(ids.contains(&1) && ids.contains(&20));
        // every fault has a non-empty description and a severity label
        for f in FaultKind::ALL {
            assert!(!f.description().is_empty());
            assert!(!f.severity().label().is_empty());
            assert!(!f.status().is_empty());
        }
    }

    #[test]
    fn triggers_require_the_right_path() {
        let mut ctx = TriggerContext::default();
        assert!(!FaultKind::HashJoinNullMatchesEmpty.triggered(&ctx));
        ctx.algo = Some(JoinAlgo::HashJoin);
        assert!(FaultKind::HashJoinNullMatchesEmpty.triggered(&ctx));
        assert!(!FaultKind::MergeJoinNegativeZeroMiss.triggered(&ctx));
        ctx.algo = Some(JoinAlgo::SortMergeJoin);
        assert!(FaultKind::MergeJoinNegativeZeroMiss.triggered(&ctx));
        // switch-dependent trigger
        let mut ctx = TriggerContext {
            algo: Some(JoinAlgo::BlockNestedLoop),
            ..Default::default()
        };
        assert!(!FaultKind::BnlhDisallowedBlankValues.triggered(&ctx));
        ctx.switched_off.push("join_cache_hashed");
        assert!(FaultKind::BnlhDisallowedBlankValues.triggered(&ctx));
    }

    #[test]
    fn fault_set_activation() {
        let fs = FaultSet::of(&[FaultKind::MergeJoinDropsLastRun]);
        let ctx = TriggerContext {
            algo: Some(JoinAlgo::SortMergeJoin),
            ..Default::default()
        };
        assert!(fs.active(FaultKind::MergeJoinDropsLastRun, &ctx));
        assert!(!fs.active(FaultKind::MergeJoinVarcharEmpty, &ctx));
        assert!(FaultSet::none().is_empty());
        assert_eq!(FaultSet::all().len(), 20);
        let mut fs = FaultSet::none();
        fs.enable(FaultKind::SemiJoinWrongResults);
        assert!(fs.contains(FaultKind::SemiJoinWrongResults));
        fs.disable(FaultKind::SemiJoinWrongResults);
        assert!(fs.is_empty());
    }

    #[test]
    fn columnar_complement_is_disjoint_from_table_4() {
        for f in FaultKind::COLUMNAR {
            assert!(!FaultKind::ALL.contains(&f));
            assert_eq!(f.dbms(), "Columnar");
            assert_eq!(f.status(), "Seeded");
            assert!(!f.description().is_empty());
            assert!((21..=24).contains(&f.table4_id()));
        }
        let mut ids: Vec<u32> = FaultKind::COLUMNAR.iter().map(|f| f.table4_id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn disk_complement_is_disjoint_from_every_other_engine() {
        for f in FaultKind::DISK {
            assert!(!FaultKind::ALL.contains(&f));
            assert!(!FaultKind::COLUMNAR.contains(&f));
            assert_eq!(f.dbms(), "Disk");
            assert_eq!(f.status(), "Seeded");
            assert!(!f.description().is_empty());
            assert!(!f.severity().label().is_empty());
            assert!((25..=29).contains(&f.table4_id()));
        }
        let mut ids: Vec<u32> = FaultKind::DISK.iter().map(|f| f.table4_id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        // a crash-recovery fault needs a steering structure to observe it
        let mut ctx = TriggerContext::default();
        assert!(!FaultKind::DiskTornPageWrite.triggered(&ctx));
        assert!(!FaultKind::DiskRecoveryDoubleReplay.triggered(&ctx));
        ctx.algo = Some(JoinAlgo::HashJoin);
        assert!(FaultKind::DiskTornPageWrite.triggered(&ctx));
        assert!(FaultKind::DiskStaleFrameRead.triggered(&ctx));
        assert!(!FaultKind::DiskSplitHighKeyLoss.triggered(&ctx));
        ctx.algo = Some(JoinAlgo::SortMergeJoin);
        assert!(FaultKind::DiskSplitHighKeyLoss.triggered(&ctx));
        assert!(!FaultKind::DiskStaleFrameRead.triggered(&ctx));
        ctx.subquery_present = true;
        assert!(FaultKind::DiskRecoveryDoubleReplay.triggered(&ctx));
    }

    #[test]
    fn optimizer_complement_is_disjoint_and_never_engine_triggered() {
        for f in FaultKind::OPTIMIZER {
            assert!(!FaultKind::ALL.contains(&f));
            assert!(!FaultKind::COLUMNAR.contains(&f));
            assert!(!FaultKind::DISK.contains(&f));
            assert_eq!(f.dbms(), "Optimizer");
            assert_eq!(f.status(), "Seeded");
            assert!(!f.description().is_empty());
            assert!(!f.severity().label().is_empty());
            assert!((30..=34).contains(&f.table4_id()));
            // No engine execution path can fire them — even the busiest
            // trigger context leaves them dormant.
            let ctx = TriggerContext {
                algo: Some(JoinAlgo::HashJoin),
                join_type: Some(JoinType::LeftOuter),
                semi_strategy: Some(SemiJoinStrategy::Materialization),
                materialization: true,
                subquery_present: true,
                simplified_from_outer: true,
                uses_join_buffer: true,
                switched_off: vec!["join_cache_bka", "join_cache_hashed"],
            };
            assert!(!f.triggered(&ctx));
        }
        let mut ids: Vec<u32> = FaultKind::OPTIMIZER.iter().map(|f| f.table4_id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn dml_complement_is_disjoint_and_never_engine_triggered() {
        for f in FaultKind::DML {
            assert!(!FaultKind::ALL.contains(&f));
            assert!(!FaultKind::COLUMNAR.contains(&f));
            assert!(!FaultKind::DISK.contains(&f));
            assert!(!FaultKind::OPTIMIZER.contains(&f));
            assert_eq!(f.dbms(), "DML");
            assert_eq!(f.status(), "Seeded");
            assert!(!f.description().is_empty());
            assert!(!f.severity().label().is_empty());
            assert!((35..=39).contains(&f.table4_id()));
            // SELECT execution paths never fire them — only the DML executor.
            let ctx = TriggerContext {
                algo: Some(JoinAlgo::HashJoin),
                join_type: Some(JoinType::LeftOuter),
                semi_strategy: Some(SemiJoinStrategy::Materialization),
                materialization: true,
                subquery_present: true,
                simplified_from_outer: true,
                uses_join_buffer: true,
                switched_off: vec!["join_cache_bka", "join_cache_hashed"],
            };
            assert!(!f.triggered(&ctx));
        }
        let mut ids: Vec<u32> = FaultKind::DML.iter().map(|f| f.table4_id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn severity_assignment_follows_table_4() {
        assert_eq!(
            FaultKind::SemiJoinWrongResults.severity(),
            Severity::Critical
        );
        assert_eq!(
            FaultKind::HashJoinVarcharViaDouble.severity(),
            Severity::Serious
        );
        assert_eq!(FaultKind::JoinCacheStaleRow.severity(), Severity::Major);
        assert_eq!(
            FaultKind::MergeJoinDropsLastRun.severity(),
            Severity::Critical
        );
        assert_eq!(FaultKind::SemiJoinFloatPrecision.severity(), Severity::High);
    }
}
