//! Per-query operator profiles: row counts and timings per physical
//! operator, collected by the engines while telemetry is enabled and
//! surfaced through `DbmsConnector::query_profile` next to EXPLAIN.
//!
//! EXPLAIN answers "what plan would run"; the profile answers "what did the
//! last execution actually do" — rows in/out and nanoseconds per join,
//! filter and group operator, the introspection the paper's plan-level
//! divergence attribution leans on.

use crate::json::Json;

/// One operator's contribution to a statement execution, in pipeline order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator label, e.g. `scan`, `join.hash`, `filter`, `group`.
    pub op: String,
    /// Rows entering the operator (left + right for joins).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Wall-clock nanoseconds spent in the operator.
    pub ns: u64,
}

/// Operator-level profile of one executed statement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    pub ops: Vec<OpProfile>,
}

impl QueryProfile {
    pub fn new() -> QueryProfile {
        QueryProfile::default()
    }

    pub fn push(&mut self, op: impl Into<String>, rows_in: u64, rows_out: u64, ns: u64) {
        self.ops.push(OpProfile {
            op: op.into(),
            rows_in,
            rows_out,
            ns,
        });
    }

    pub fn total_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.ns).sum()
    }

    /// Rows emitted by the last operator (the statement's output side).
    pub fn output_rows(&self) -> u64 {
        self.ops.last().map(|o| o.rows_out).unwrap_or(0)
    }

    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.ops
                .iter()
                .map(|o| {
                    Json::Obj(vec![
                        ("op".to_string(), Json::str(o.op.clone())),
                        ("rows_in".to_string(), Json::count(o.rows_in as usize)),
                        ("rows_out".to_string(), Json::count(o.rows_out as usize)),
                        ("ns".to_string(), Json::count(o.ns as usize)),
                    ])
                })
                .collect(),
        )
    }

    /// EXPLAIN ANALYZE-style rendering, one operator per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.ops {
            out.push_str(&format!(
                "{:<12} rows_in={:<8} rows_out={:<8} ns={}\n",
                o.op, o.rows_in, o.rows_out, o.ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_and_serializes() {
        let mut p = QueryProfile::new();
        p.push("scan", 0, 240, 1_000);
        p.push("join.hash", 480, 300, 25_000);
        p.push("project", 300, 300, 2_000);
        assert_eq!(p.total_ns(), 28_000);
        assert_eq!(p.output_rows(), 300);
        let j = Json::parse(&p.to_json().to_string()).unwrap();
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("op").and_then(Json::as_str), Some("join.hash"));
        assert_eq!(arr[1].get("rows_in").and_then(Json::as_usize), Some(480));
        assert!(p.render().contains("join.hash"));
    }
}
