//! Minimal JSON model, writer and parser.
//!
//! The workspace builds fully offline and the `serde` shim under
//! `crates/compat/` is a no-op marker (see its README note), so everything
//! that persists JSON — the campaign's JSONL corpus and checkpoint journal,
//! the `BENCH_*.json` artifacts, metrics snapshots and Chrome-trace exports —
//! serializes through this small, dependency-free JSON implementation
//! instead. It lives in `tqs-telemetry` (the bottom of the crate graph) so
//! every layer can reach it; `tqs_campaign::json` re-exports it for the
//! historical path.
//!
//! Design notes:
//!
//! * Numbers are stored as [`f64`]. Anything that must round-trip exactly at
//!   64-bit width (plan fingerprints, row values) is written as a string by
//!   its owner; this module never guesses.
//! * The parser is a plain recursive-descent over the full grammar (strings
//!   with escapes, `\uXXXX` included) and rejects trailing garbage — a
//!   truncated corpus line (a campaign killed mid-write) surfaces as an
//!   error, which resume treats as "drop the partial tail line".

use std::fmt;

/// A JSON value. Object order is preserved (insertion order), so emitted
/// files are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A `usize` count (counts in this codebase comfortably fit in f64's
    /// 53-bit integer range).
    pub fn count(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().map(|n| n as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

/// Parse error with byte offset, so a corrupt corpus line is diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // NaN/∞ have no JSON representation: reject them to
                    // `null` rather than emit a token no parser (including
                    // ours) accepts, which would tear the enclosing line.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(&mut buf, k);
                    write!(f, "\"{buf}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes in one push.
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("campaign")),
            ("count".into(), Json::count(42)),
            ("ratio".into(), Json::Num(2.5)),
            ("on".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::str("a\"b\\c\nd"), Json::count(0)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_standard_json_with_whitespace_and_escapes() {
        let v =
            Json::parse(r#" { "a" : [ 1 , -2.5e1 , "xA\t" ] , "b" : { } , "c" : null } "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(-25.0));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("xA\t")
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_truncated_documents() {
        assert!(Json::parse("{\"a\": [1, 2").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::count(7).to_string(), "7");
        assert_eq!(Json::Num(1.25).to_string(), "1.25");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"s":"x","n":3,"b":false}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        // The writer refuses to emit tokens outside the JSON grammar…
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
        // …and the parser refuses to accept them.
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        assert!(Json::parse("[1,NaN]").is_err());
    }
}

#[cfg(test)]
mod fuzz {
    //! Round-trip fuzzing of the writer/parser pair: random documents must
    //! survive `to_string` → `parse` exactly, and truncated documents must
    //! error instead of panicking.

    use super::*;
    use proptest::prelude::*;

    /// Strings exercising every escape path: quotes, backslashes, the named
    /// control escapes, raw C0 control chars (`\u{01}`–`\u{08}` take the
    /// `\uXXXX` path) and non-ASCII.
    const STRINGS: &str = "[a-zA-Z0-9\"\\\\\n\r\t\u{01}-\u{08}/ α-ωß]{0,16}";

    fn leaf() -> BoxedStrategy<Json> {
        prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            // Integers in the exact-i64-print range.
            (-9_000_000_000_000i64..9_000_000_000_000).prop_map(|n| Json::Num(n as f64)),
            // Dyadic fractions round-trip f64 text exactly.
            (-1_000_000i64..1_000_000).prop_map(|n| Json::Num(n as f64 / 64.0)),
            STRINGS.prop_map(Json::Str),
        ]
        .boxed()
    }

    fn arb_json(depth: u32) -> BoxedStrategy<Json> {
        if depth == 0 {
            return leaf();
        }
        prop_oneof![
            leaf(),
            proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
            proptest::collection::vec((STRINGS, arb_json(depth - 1)), 0..4).prop_map(Json::Obj),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn documents_round_trip_exactly(v in arb_json(3)) {
            let text = v.to_string();
            let back = Json::parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e} in {text:?}")))?;
            prop_assert_eq!(&back, &v);
            // Serialization is deterministic (what compaction idempotence
            // leans on): a second trip prints the same bytes.
            prop_assert_eq!(back.to_string(), text);
        }

        #[test]
        fn string_escapes_round_trip(s in STRINGS) {
            let j = Json::str(s);
            let text = j.to_string();
            let back = Json::parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e} in {text:?}")))?;
            prop_assert_eq!(back, j);
        }

        #[test]
        fn truncated_documents_error_instead_of_panicking(
            v in arb_json(2),
            cut in 0usize..10_000,
        ) {
            let text = v.to_string();
            prop_assert!(!text.is_empty());
            let mut at = cut % text.len();
            while !text.is_char_boundary(at) {
                at -= 1;
            }
            let prefix = &text[..at];
            match &v {
                // Containers and strings always need their closer, so every
                // strict prefix must fail to parse (never panic).
                Json::Arr(_) | Json::Obj(_) | Json::Str(_) => {
                    prop_assert!(Json::parse(prefix).is_err(), "parsed {prefix:?}");
                }
                // Scalar prefixes may legitimately parse ("12" from "123");
                // the property is only that nothing panics.
                _ => {
                    let _ = Json::parse(prefix);
                }
            }
        }
    }
}
