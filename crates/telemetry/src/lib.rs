//! # tqs-telemetry
//!
//! Hand-rolled, dependency-free observability for the TQS workspace. The
//! workspace builds fully offline (the classic ecosystem crates are no-op
//! shims under `crates/compat/`), so instead of `tracing` + `metrics` this
//! crate provides the three layers every other crate instruments through:
//!
//! * [`trace`] — structured spans/events on a thread-local span stack,
//!   exported in Chrome trace-event format (one event object per line) that
//!   Perfetto and `chrome://tracing` open directly.
//! * [`metrics`] — a process-wide registry of atomic counters, gauges and
//!   log-linear histograms with mergeable [`MetricsSnapshot`]s, serialized
//!   through the workspace's hand-rolled [`json`] module.
//! * [`profile`] — per-query [`QueryProfile`]s: operator-level row counts
//!   and timings the engines collect and `DbmsConnector::query_profile`
//!   surfaces next to EXPLAIN.
//!
//! ## The enable gate
//!
//! Everything is gated on one process-global flag ([`set_enabled`] /
//! [`enabled`]): while disabled, a counter bump or span entry is a single
//! relaxed atomic load and an early return — no allocation, no lock, no
//! clock read — which is what keeps the allocation-free execution hot path
//! at full speed (`exp_obs` measures the enabled overhead and CI gates it
//! under 5%). The flag defaults to **off**; binaries opt in (`exp_campaign`,
//! `exp_obs`) or honor the `TQS_TELEMETRY` environment knob via
//! [`init_from_env`].
//!
//! This crate sits at the bottom of the workspace graph and depends on
//! nothing, so `tqs-pager`, `tqs-engine`, `tqs-optimizer`, `tqs-core` and
//! `tqs-campaign` can all instrument through it.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{
    counter, gauge, histogram, reset_metrics, snapshot_metrics, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use profile::{OpProfile, QueryProfile};
pub use trace::{
    dropped_events, event, event_with, export_chrome_trace, parse_chrome_trace,
    render_chrome_trace, span, span_depth, span_with, take_events, SpanGuard, TraceEvent,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection on? One relaxed load — the gate every span,
/// counter and profile hook checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Honor the `TQS_TELEMETRY` environment knob (`0`/`off`/`false` disable,
/// anything else enables; unset leaves the default given by the caller).
pub fn init_from_env(default_on: bool) {
    let on = match std::env::var("TQS_TELEMETRY") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | ""),
        Err(_) => default_on,
    };
    set_enabled(on);
}

/// Serialize tests that toggle the process-global flag or drain the global
/// trace collector.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_flag_gates_collection() {
        let _g = test_guard();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }
}

#[cfg(test)]
mod histogram_fuzz {
    //! Satellite: record/merge associativity — folding per-shard histogram
    //! snapshots must be independent of fold order, the property that lets a
    //! fleet merge worker snapshots into one artifact.

    use super::metrics::{Histogram, HistogramSnapshot};
    use super::test_guard;
    use proptest::prelude::*;

    fn snap(samples: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_associative_and_matches_combined_recording(
            a in proptest::collection::vec(any::<u64>(), 0..24),
            b in proptest::collection::vec(any::<u64>(), 0..24),
            c in proptest::collection::vec(any::<u64>(), 0..24),
        ) {
            let _g = test_guard();
            super::set_enabled(true);
            let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
            // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
            let left = sa.merge(&sb).merge(&sc);
            let right = sa.merge(&sb.merge(&sc));
            super::set_enabled(false);
            prop_assert_eq!(&left, &right);
            // Commutativity while we're here.
            prop_assert_eq!(&sa.merge(&sb), &sb.merge(&sa));
            // And the merged snapshot equals recording everything into one
            // histogram (sums can overflow u64 in the adversarial domain;
            // wrapping is fine for the equality check because both sides
            // wrap identically).
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            super::set_enabled(true);
            let combined = snap(&all);
            super::set_enabled(false);
            prop_assert_eq!(left.count, combined.count);
            prop_assert_eq!(left.min, combined.min);
            prop_assert_eq!(left.max, combined.max);
            prop_assert_eq!(&left.buckets, &combined.buckets);
        }
    }
}
