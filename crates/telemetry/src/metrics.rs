//! The process-wide metrics registry: atomic counters, gauges and
//! log-linear histograms with mergeable snapshots.
//!
//! Metric handles are `&'static` — a site registers once (the [`counter!`],
//! [`gauge!`] and [`histogram!`](crate::histogram) macros cache the handle in
//! a local `OnceLock`) and then updates are a single relaxed atomic op. Every
//! update is gated on the global [`enabled`](crate::enabled) flag, so with
//! telemetry off an instrumented hot path pays one predictable branch on an
//! always-cached atomic load and nothing else.
//!
//! Naming convention (see the README's Observability guide):
//! `layer.component.metric`, e.g. `engine.row.join.rows_out`,
//! `pager.pool.hits`, `optimizer.enumerate.memo_hits`,
//! `campaign.oracle.pass`.

use crate::enabled;
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`; a no-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one; a no-op while telemetry is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that goes up and down (queue depths, live cells).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge; a no-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative); a no-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution of the log-linear histogram: each power-of-two
/// octave is split into `2^SUB_BITS` linear sub-buckets (~12% relative
/// error), the classic HDR layout.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Values `0..SUB` get exact buckets; octaves `SUB_BITS..=63` get `SUB`
/// sub-buckets each.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index of a recorded value (log-linear, monotone in the value).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (msb - SUB_BITS)) & (SUB - 1);
    ((msb - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// Smallest value that lands in bucket `i` — the inverse of
/// [`bucket_index`] on bucket lower bounds.
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let group = (i as u64 / SUB) - 1 + SUB_BITS as u64; // the octave's msb
    let sub = i as u64 & (SUB - 1);
    (1 << group) | (sub << (group - SUB_BITS as u64))
}

/// A log-linear histogram of `u64` samples (typically nanoseconds or row
/// counts). Recording is lock-free; snapshots are mergeable and associative.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: v.try_into().expect("BUCKETS-sized vec"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample; a no-op while telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_lower_bound(i), n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one histogram. `merge` is associative and
/// commutative, so per-shard/per-run snapshots fold in any order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(bucket lower bound, samples)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(bound, n) in &other.buckets {
            *merged.entry(bound).or_insert(0) += n;
        }
        HistogramSnapshot {
            buckets: merged.into_iter().collect(),
            count: self.count + other.count,
            // Nanosecond sums can exceed u64 when folding adversarial or
            // multi-day snapshots; wrapping keeps merge total (and matches
            // the wrapping fetch_add on the live histogram).
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.max
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_string(), Json::count(self.count as usize)),
            ("sum".to_string(), Json::count(self.sum as usize)),
            ("min".to_string(), Json::count(self.min as usize)),
            ("max".to_string(), Json::count(self.max as usize)),
            ("mean".to_string(), Json::Num(self.mean())),
            ("p50".to_string(), Json::count(self.quantile(0.5) as usize)),
            ("p99".to_string(), Json::count(self.quantile(0.99) as usize)),
            (
                "buckets".to_string(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(bound, n)| {
                            Json::Arr(vec![Json::count(bound as usize), Json::count(n as usize)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The registry: name → handle maps behind a mutex that is touched only at
/// registration (once per site) and snapshot time, never on the update path.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Register (or look up) the process-wide counter named `name`. Handles are
/// leaked once per distinct name — the metric namespace is a small static
/// set, so this is a bounded, intentional leak.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().counters.lock().expect("registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Register (or look up) the process-wide gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry().gauges.lock().expect("registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Register (or look up) the process-wide histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry().histograms.lock().expect("registry poisoned");
    map.entry(name).or_insert_with(|| Box::leak(Box::default()))
}

/// Reset every registered metric to zero — `exp_obs` isolates runs with
/// this, and tests use it for a clean slate. Handles stay valid.
pub fn reset_metrics() {
    let r = registry();
    for c in r.counters.lock().expect("registry poisoned").values() {
        c.reset();
    }
    for g in r.gauges.lock().expect("registry poisoned").values() {
        g.reset();
    }
    for h in r.histograms.lock().expect("registry poisoned").values() {
        h.reset();
    }
}

/// A point-in-time copy of the whole registry. Mergeable (associative and
/// commutative, like its histograms) so multi-process fleets can fold
/// per-worker snapshots into one artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            // Gauges are last-writer-wins; "other" is the later snapshot.
            out.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(v),
                None => v.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// Serialize through the workspace JSON module (deterministic member
    /// order: the registry maps are sorted by name).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::count(*v as usize)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Snapshot every registered metric, dropping empty histograms.
pub fn snapshot_metrics() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, c)| (k.to_string(), c.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, g)| (k.to_string(), g.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (k.to_string(), h.snapshot()))
            .collect(),
    }
}

/// Cache a `&'static Counter` handle at the use site:
/// `counter!("pager.pool.hits").incr()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Cache a `&'static Gauge` handle at the use site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Cache a `&'static Histogram` handle at the use site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_guard;

    #[test]
    fn bucket_index_is_monotone_and_inverts_on_bounds() {
        let mut last = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "bucket index must be monotone at {v}");
            last = i;
            assert!(bucket_lower_bound(i) <= v);
            assert!(i < BUCKETS);
        }
        for i in 0..BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
        }
    }

    #[test]
    fn counters_and_gauges_only_move_while_enabled() {
        let _g = test_guard();
        let c = counter("test.metrics.gate");
        let g = gauge("test.metrics.gate.gauge");
        c.reset();
        g.reset();
        crate::set_enabled(false);
        c.add(5);
        g.set(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        crate::set_enabled(true);
        c.add(5);
        g.set(9);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 9);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_snapshot_aggregates() {
        let _g = test_guard();
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1_000_106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000_000);
        assert!(s.quantile(0.5) <= 100);
        assert!(s.quantile(1.0) >= 917_504); // bucket lower bound of 1e6
        crate::set_enabled(false);
    }

    #[test]
    fn snapshot_merge_matches_combined_recording() {
        let _g = test_guard();
        crate::set_enabled(true);
        let (a, b, combined) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 9, 1 << 30] {
            a.record(v);
            combined.record(v);
        }
        for v in [0u64, 9, 77_777] {
            b.record(v);
            combined.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), combined.snapshot());
        crate::set_enabled(false);
    }

    #[test]
    fn metrics_snapshot_serializes_and_merges() {
        let _g = test_guard();
        crate::set_enabled(true);
        counter("test.metrics.snap").reset();
        counter("test.metrics.snap").add(3);
        let one = snapshot_metrics();
        let folded = one.merge(&one);
        assert_eq!(folded.counters["test.metrics.snap"], 6);
        let parsed = Json::parse(&one.to_json().to_string()).unwrap();
        assert!(parsed.get("counters").is_some());
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("test.metrics.snap"))
                .and_then(Json::as_usize),
            Some(3)
        );
        crate::set_enabled(false);
    }
}
