//! Structured spans and events on a thread-local span stack, exported in
//! Chrome trace-event format (one JSON event object per line — a JSONL body
//! wrapped in a top-level array, which Perfetto and `chrome://tracing` open
//! directly).
//!
//! Spans are RAII: [`span`] pushes onto the current thread's stack and the
//! returned guard records a complete (`"ph": "X"`) event on drop. Nesting
//! needs no parent ids — Perfetto nests complete events on the same thread
//! lane by time containment, which the stack discipline guarantees. While
//! telemetry is disabled a span is one atomic load and no allocation.
//!
//! The collector is process-wide and capped: a multi-hour campaign cannot
//! OOM the process by tracing; overflow is counted and reported in the
//! export instead.

use crate::enabled;
use crate::json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered trace events (complete spans + instants).
const MAX_EVENTS: usize = 250_000;

/// One Chrome trace event: a completed span (`ph == "X"`, with duration) or
/// an instant event (`ph == "i"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    /// Category — by convention the emitting layer (`engine`, `pager`,
    /// `optimizer`, `campaign`).
    pub cat: &'static str,
    /// `'X'` complete span, `'i'` instant event.
    pub ph: char,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (complete spans only).
    pub dur_us: u64,
    /// Trace lane: a small dense per-thread id.
    pub tid: u64,
    /// Structured arguments, rendered into the event's `args` object.
    pub args: Vec<(String, Json)>,
}

impl TraceEvent {
    /// The Chrome trace-event object for this entry.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".to_string(), Json::str(self.name.clone())),
            ("cat".to_string(), Json::str(self.cat)),
            ("ph".to_string(), Json::str(self.ph.to_string())),
            ("ts".to_string(), Json::count(self.ts_us as usize)),
            ("pid".to_string(), Json::count(1)),
            ("tid".to_string(), Json::count(self.tid as usize)),
        ];
        if self.ph == 'X' {
            members.insert(4, ("dur".to_string(), Json::count(self.dur_us as usize)));
        }
        if !self.args.is_empty() {
            members.push(("args".to_string(), Json::Obj(self.args.clone())));
        }
        Json::Obj(members)
    }

    /// Parse one Chrome trace-event object back (the JSONL round-trip tests
    /// and external tooling use this; export is the primary direction).
    pub fn from_json(j: &Json) -> Result<TraceEvent, String> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event missing `name`")?
            .to_string();
        let ph = j
            .get("ph")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .ok_or("event missing `ph`")?;
        let cat = match j.get("cat").and_then(Json::as_str) {
            Some("engine") => "engine",
            Some("pager") => "pager",
            Some("optimizer") => "optimizer",
            Some("campaign") => "campaign",
            Some("bench") => "bench",
            _ => "other",
        };
        let num = |k: &str| j.get(k).and_then(Json::as_usize).unwrap_or(0) as u64;
        Ok(TraceEvent {
            name,
            cat,
            ph,
            ts_us: num("ts"),
            dur_us: num("dur"),
            tid: num("tid"),
            args: match j.get("args") {
                Some(Json::Obj(members)) => members.clone(),
                _ => Vec::new(),
            },
        })
    }
}

struct Collector {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicUsize,
    next_tid: AtomicU64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        events: Mutex::new(Vec::new()),
        dropped: AtomicUsize::new(0),
        next_tid: AtomicU64::new(1),
    })
}

thread_local! {
    /// Dense per-thread lane id, assigned on first use.
    static TID: u64 = collector().next_tid.fetch_add(1, Ordering::Relaxed);
    /// The thread-local span stack: (name, cat, start). Only depth and pop
    /// order matter — nesting in the export falls out of time containment.
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn push_event(ev: TraceEvent) {
    let c = collector();
    let mut events = c.events.lock().expect("trace collector poisoned");
    if events.len() >= MAX_EVENTS {
        drop(events);
        c.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(ev);
}

fn now_us() -> u64 {
    collector().epoch.elapsed().as_micros() as u64
}

/// RAII span guard: records a complete trace event on drop. Inactive (and
/// allocation-free) while telemetry is disabled.
pub struct SpanGuard {
    name: Option<String>,
    cat: &'static str,
    start_us: u64,
    args: Vec<(String, Json)>,
}

impl SpanGuard {
    /// Attach a structured argument to the span (no-op on inactive spans).
    pub fn arg(&mut self, key: &str, value: Json) {
        if self.name.is_some() {
            self.args.push((key.to_string(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let end = now_us();
        push_event(TraceEvent {
            name,
            cat: self.cat,
            ph: 'X',
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            tid: TID.with(|t| *t),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Enter a span with a static name: `let _s = span("campaign", "run");`.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_with(cat, || name.to_string())
}

/// Enter a span whose name is built lazily — the closure only runs while
/// telemetry is enabled, so dynamic names cost nothing when disabled:
/// `let _s = span_with("campaign", || format!("cell-{id}"));`.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: None,
            cat,
            start_us: 0,
            args: Vec::new(),
        };
    }
    SPAN_STACK.with(|s| {
        s.borrow_mut().push(cat);
    });
    SpanGuard {
        name: Some(name()),
        cat,
        start_us: now_us(),
        args: Vec::new(),
    }
}

/// Current depth of this thread's span stack (0 outside any span).
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Emit an instant event (`ph: "i"`), e.g. a torn-tail repair or an oracle
/// verdict worth pinning to the timeline. The closure building `(name,
/// args)` only runs while telemetry is enabled.
pub fn event_with(cat: &'static str, build: impl FnOnce() -> (String, Vec<(String, Json)>)) {
    if !enabled() {
        return;
    }
    let (name, args) = build();
    push_event(TraceEvent {
        name,
        cat,
        ph: 'i',
        ts_us: now_us(),
        dur_us: 0,
        tid: TID.with(|t| *t),
        args,
    });
}

/// Emit an instant event with a static name and no arguments.
pub fn event(cat: &'static str, name: &'static str) {
    event_with(cat, || (name.to_string(), Vec::new()));
}

/// Drain the collected trace events (export consumes; tests inspect).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *collector().events.lock().expect("trace collector poisoned"))
}

/// Events dropped because the collector cap was reached.
pub fn dropped_events() -> usize {
    collector().dropped.load(Ordering::Relaxed)
}

/// Render events as a Chrome trace document: a JSON array with one event
/// object per line. Perfetto and `chrome://tracing` open it as-is, and each
/// body line is itself a complete JSON object (JSONL-greppable).
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&ev.to_json().to_string());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Parse a Chrome trace document produced by [`render_chrome_trace`] back
/// into events — the round-trip contract the JSONL export is tested against.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let Json::Arr(items) = doc else {
        return Err("chrome trace must be a top-level array".to_string());
    };
    items.iter().map(TraceEvent::from_json).collect()
}

/// Drain the collector and write a Chrome trace file to `path`.
pub fn export_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events = take_events();
    std::fs::write(path, render_chrome_trace(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_guard;

    #[test]
    fn disabled_spans_record_nothing_and_skip_name_construction() {
        let _g = test_guard();
        crate::set_enabled(false);
        take_events();
        {
            let _s = span_with("bench", || panic!("name built while disabled"));
            assert_eq!(span_depth(), 0);
        }
        event_with("bench", || panic!("event built while disabled"));
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_nest_on_the_thread_local_stack() {
        let _g = test_guard();
        crate::set_enabled(true);
        take_events();
        {
            let _outer = span("bench", "outer");
            assert_eq!(span_depth(), 1);
            {
                let _inner = span("bench", "inner");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        crate::set_enabled(false);
        let evs: Vec<TraceEvent> = take_events()
            .into_iter()
            .filter(|e| e.name == "outer" || e.name == "inner")
            .collect();
        // Inner drops (and records) first; the outer span must contain it.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[1].name, "outer");
        assert!(evs[1].ts_us <= evs[0].ts_us);
        assert!(evs[1].ts_us + evs[1].dur_us >= evs[0].ts_us + evs[0].dur_us);
        assert_eq!(evs[0].tid, evs[1].tid);
    }

    #[test]
    fn chrome_trace_round_trips_through_the_json_module() {
        let _g = test_guard();
        crate::set_enabled(true);
        take_events();
        {
            let mut s = span("campaign", "cell-7");
            s.arg("queries", Json::count(42));
        }
        event_with("campaign", || {
            (
                "torn_tail_dropped".to_string(),
                vec![("file".to_string(), Json::str("corpus.jsonl"))],
            )
        });
        crate::set_enabled(false);
        let events: Vec<TraceEvent> = take_events()
            .into_iter()
            .filter(|e| e.cat == "campaign")
            .collect();
        assert_eq!(events.len(), 2);
        let text = render_chrome_trace(&events);
        // Every body line is a complete JSON object (strip the array comma).
        for line in text.lines().filter(|l| l.starts_with('{')) {
            Json::parse(line.trim_end_matches(',')).expect("JSONL body line");
        }
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed, events);
    }
}
