//! Drives a live campaign while a plain-TCP client follows the HTTP/JSONL
//! status endpoint, verifying the streamed snapshots and the terminal line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tqs_campaign::{
    Campaign, CampaignConfig, CampaignStatusServer, EngineKind, Json, OracleSpec, PlanMode,
    Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn cfg(dir: std::path::PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 90,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 3,
                max_injections: 10,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 60,
        seed: 99,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

#[test]
fn status_endpoint_streams_a_live_campaign() {
    let dir = std::env::temp_dir().join(format!("tqs-status-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
    let cells_total = campaign.cells_total();
    let board = campaign.status_board();
    let server = CampaignStatusServer::start(board, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let hunter = std::thread::spawn(move || {
        let stats = campaign.run().unwrap();
        assert!(campaign.is_complete());
        stats
    });

    // Follow the stream while the hunt runs. The server closes the
    // connection after the final (finished) snapshot line.
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "GET /stream?interval_ms=20 HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.trim().is_empty() {
            break; // end of the HTTP header block
        }
    }
    let mut snapshots = Vec::new();
    loop {
        let mut body_line = String::new();
        if reader.read_line(&mut body_line).unwrap() == 0 {
            break; // server closed after the terminal snapshot
        }
        if body_line.trim().is_empty() {
            continue;
        }
        snapshots.push(Json::parse(body_line.trim()).expect("stream line is JSON"));
    }
    let stats = hunter.join().unwrap();

    assert!(!snapshots.is_empty(), "stream produced no snapshots");
    for snap in &snapshots {
        // A snapshot taken before the hunter thread enters `run()` is a bare
        // idle marker; every running/finished line carries the full stats.
        let state = snap.get("state").and_then(Json::as_str).expect("state");
        if state == "idle" {
            continue;
        }
        assert!(snap.get("queries").is_some());
        assert!(snap.get("cells_total").is_some());
    }
    let last = snapshots.last().unwrap();
    assert_eq!(last.get("state").unwrap().as_str(), Some("finished"));
    assert_eq!(
        last.get("cells_done").unwrap().as_usize(),
        Some(cells_total)
    );
    assert_eq!(
        last.get("queries").unwrap().as_usize(),
        Some(stats.queries),
        "terminal snapshot must be the run's final stats"
    );

    // Point queries still work after the run is over.
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    let parsed = Json::parse(body).unwrap();
    assert_eq!(parsed.get("state").unwrap().as_str(), Some("finished"));
    assert_eq!(
        parsed.get("bug_classes").unwrap().as_usize(),
        Some(stats.bug_classes)
    );

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stream_survives_a_client_disconnecting_mid_stream() {
    // Regression test: the status server handles connections serially, so a
    // client that opens `/stream` and vanishes must not wedge the serving
    // thread — later clients still get answers.
    use std::sync::Arc;
    use tqs_campaign::stats::RunTotals;
    use tqs_campaign::{LiveStats, StatusBoard};

    let board = Arc::new(StatusBoard::new());
    // A board mid-run: the stream has no terminal line and ticks forever.
    let live = Arc::new(LiveStats::start_with_prior(RunTotals::default()));
    board.begin_run(Arc::clone(&live), 10, 0, 0, 0);
    let server = CampaignStatusServer::start(Arc::clone(&board), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Client 1: start a stream, read one line, hang up without warning.
    {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(
            conn,
            "GET /stream?interval_ms=10 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(conn);
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.starts_with('{') {
                break; // got one snapshot; the stream is live
            }
        }
        // Dropping the socket here is the disconnect.
    }

    // Client 2 must still be served promptly on the same serving thread.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    let parsed = Json::parse(body).unwrap();
    assert_eq!(parsed.get("state").unwrap().as_str(), Some("running"));

    // Graceful-stop states surface in the status JSON.
    board.request_stop();
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert_eq!(
        Json::parse(body).unwrap().get("state").unwrap().as_str(),
        Some("stopping")
    );
    board.finish(live.snapshot(10, 5, 0, 0));
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert_eq!(
        Json::parse(body).unwrap().get("state").unwrap().as_str(),
        Some("stopped")
    );

    server.stop();
}
