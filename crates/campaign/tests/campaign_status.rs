//! Drives a live campaign while a plain-TCP client follows the HTTP/JSONL
//! status endpoint, verifying the streamed snapshots and the terminal line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tqs_campaign::{
    Campaign, CampaignConfig, CampaignStatusServer, EngineKind, Json, OracleSpec, PlanMode,
    Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn cfg(dir: std::path::PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 90,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 3,
                max_injections: 10,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 60,
        seed: 99,
        minimize: false,
        max_cells_per_run: None,
    }
}

#[test]
fn status_endpoint_streams_a_live_campaign() {
    let dir = std::env::temp_dir().join(format!("tqs-status-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
    let cells_total = campaign.cells_total();
    let board = campaign.status_board();
    let server = CampaignStatusServer::start(board, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let hunter = std::thread::spawn(move || {
        let stats = campaign.run().unwrap();
        assert!(campaign.is_complete());
        stats
    });

    // Follow the stream while the hunt runs. The server closes the
    // connection after the final (finished) snapshot line.
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "GET /stream?interval_ms=20 HTTP/1.1\r\nHost: x\r\n\r\n"
    )
    .unwrap();
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.trim().is_empty() {
            break; // end of the HTTP header block
        }
    }
    let mut snapshots = Vec::new();
    loop {
        let mut body_line = String::new();
        if reader.read_line(&mut body_line).unwrap() == 0 {
            break; // server closed after the terminal snapshot
        }
        if body_line.trim().is_empty() {
            continue;
        }
        snapshots.push(Json::parse(body_line.trim()).expect("stream line is JSON"));
    }
    let stats = hunter.join().unwrap();

    assert!(!snapshots.is_empty(), "stream produced no snapshots");
    for snap in &snapshots {
        // A snapshot taken before the hunter thread enters `run()` is a bare
        // idle marker; every running/finished line carries the full stats.
        let state = snap.get("state").and_then(Json::as_str).expect("state");
        if state == "idle" {
            continue;
        }
        assert!(snap.get("queries").is_some());
        assert!(snap.get("cells_total").is_some());
    }
    let last = snapshots.last().unwrap();
    assert_eq!(last.get("state").unwrap().as_str(), Some("finished"));
    assert_eq!(
        last.get("cells_done").unwrap().as_usize(),
        Some(cells_total)
    );
    assert_eq!(
        last.get("queries").unwrap().as_usize(),
        Some(stats.queries),
        "terminal snapshot must be the run's final stats"
    );

    // Point queries still work after the run is over.
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    std::io::Read::read_to_string(&mut conn, &mut response).unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    let parsed = Json::parse(body).unwrap();
    assert_eq!(parsed.get("state").unwrap().as_str(), Some("finished"));
    assert_eq!(
        parsed.get("bug_classes").unwrap().as_usize(),
        Some(stats.bug_classes)
    );

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
