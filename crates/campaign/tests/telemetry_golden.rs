//! Telemetry must observe, never steer: the same campaign configuration
//! hunted with telemetry off and with full telemetry on (spans, metrics,
//! per-query profiles) must converge to the byte-identical deduplicated
//! bug-class set. Runs in its own process because the telemetry switch is
//! process-global.

use tqs_campaign::{Campaign, CampaignConfig, EngineKind, OracleSpec, PlanMode, Workload};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn cfg(dir: std::path::PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 80,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 3,
                max_injections: 12,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Columnar],
        plan_modes: vec![PlanMode::Single, PlanMode::Space],
        workloads: vec![Workload::Select],
        queries_per_cell: 12,
        seed: 4242,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

fn hunt(tag: &str) -> std::collections::BTreeSet<String> {
    let dir = std::env::temp_dir().join(format!("tqs-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
    campaign.run().unwrap();
    assert!(campaign.is_complete());
    let keys = campaign.class_keys();
    std::fs::remove_dir_all(&dir).unwrap();
    keys
}

#[test]
fn bug_class_set_is_identical_with_telemetry_on_and_off() {
    tqs_telemetry::set_enabled(false);
    let baseline = hunt("off");
    assert!(!baseline.is_empty(), "seeded faults should surface");

    tqs_telemetry::set_enabled(true);
    let observed = hunt("on");
    tqs_telemetry::set_enabled(false);

    assert_eq!(
        baseline, observed,
        "telemetry changed the campaign's bug-class set"
    );

    // And the instrumented run actually observed the hunt.
    let snapshot = tqs_telemetry::snapshot_metrics();
    let json = snapshot.to_json();
    let counters = json.get("counters").expect("counters member");
    assert!(
        counters.get("campaign.oracle.pass").is_some()
            || counters.get("campaign.oracle.bugs").is_some(),
        "oracle verdict counters missing from {counters:?}"
    );
    assert!(
        counters.get("campaign.checkpoint.cell_appends").is_some(),
        "checkpoint I/O counter missing"
    );
    let spans = tqs_telemetry::take_events();
    assert!(
        spans.iter().any(|e| e.name.starts_with("cell-")),
        "per-cell spans missing from the trace"
    );
}
