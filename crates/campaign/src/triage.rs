//! Fleet-level bug triage: plan-fingerprint deduplication of raw reports
//! into bug classes.
//!
//! A campaign at fleet throughput produces thousands of raw divergence
//! reports; almost all of them are re-sightings of a known bug through a
//! different hint set or literal. [`BugTriage`] collapses them using
//! [`BugReport::class_key`] — root-cause faults plus the canonical
//! plan-graph fingerprint — keeping one representative report per class and
//! counting the duplicates (the campaign's dedup ratio).

use std::collections::{BTreeSet, HashMap};
use tqs_core::bugs::BugReport;

/// One deduplicated bug class.
#[derive(Debug, Clone)]
pub struct TriageClass {
    /// The dedup key ([`BugReport::class_key`]).
    pub key: String,
    /// Canonical plan-graph fingerprint, when stamped.
    pub fingerprint: Option<u64>,
    /// The first report that established the class. Its `minimized_sql` is
    /// filled in once the per-class minimizer has run.
    pub representative: BugReport,
    /// Id of the campaign cell that discovered the class.
    pub cell_id: usize,
    /// Raw reports collapsed into this class, including the representative.
    pub sightings: usize,
}

/// The campaign-wide dedup state.
#[derive(Debug, Clone, Default)]
pub struct BugTriage {
    classes: Vec<TriageClass>,
    by_key: HashMap<String, usize>,
}

impl BugTriage {
    pub fn new() -> BugTriage {
        BugTriage::default()
    }

    /// Offer one raw report. Returns `Some(class index)` when the report
    /// established a *new* class (the caller then owns minimizing the
    /// representative and persisting the class), `None` when it was a
    /// duplicate sighting.
    pub fn admit(&mut self, report: BugReport, cell_id: usize) -> Option<usize> {
        // Duplicate sightings (the overwhelming majority at fleet
        // throughput) borrow the report's memoized key — no allocation.
        match self.by_key.get(report.class_key()) {
            Some(&idx) => {
                self.classes[idx].sightings += 1;
                None
            }
            None => {
                let idx = self.classes.len();
                let key = report.class_key().to_string();
                self.by_key.insert(key.clone(), idx);
                self.classes.push(TriageClass {
                    key,
                    fingerprint: report.fingerprint,
                    representative: report,
                    cell_id,
                    sightings: 1,
                });
                Some(idx)
            }
        }
    }

    /// Record the minimized reproducer on a class admitted earlier.
    pub fn set_minimized(&mut self, idx: usize, minimized_sql: String) {
        self.classes[idx].representative.minimized_sql = Some(minimized_sql);
    }

    pub fn classes(&self) -> &[TriageClass] {
        &self.classes
    }

    pub fn class(&self, idx: usize) -> &TriageClass {
        &self.classes[idx]
    }

    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total raw sightings across all classes.
    pub fn sightings(&self) -> usize {
        self.classes.iter().map(|c| c.sightings).sum()
    }

    /// The deduplicated class-key set — the campaign's primary artifact, and
    /// what the resume test compares bit-for-bit.
    pub fn class_keys(&self) -> BTreeSet<String> {
        self.classes.iter().map(|c| c.key.clone()).collect()
    }

    /// Classes at root-cause granularity: the sorted fault-label set of each
    /// class (or the oracle label when no fault provenance exists). Coarser
    /// than [`class_keys`](Self::class_keys); used to compare hunts that ran
    /// on different data partitions.
    pub fn fault_classes(&self) -> BTreeSet<String> {
        self.classes
            .iter()
            .map(|c| {
                let mut types = c.representative.bug_types();
                types.sort();
                types.join("+")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_core::bugs::OracleKind;
    use tqs_engine::FaultKind;

    fn report(fp: u64, fault: FaultKind) -> BugReport {
        BugReport {
            dbms: "MySQL-like".into(),
            oracle: OracleKind::GroundTruth,
            sql: "SELECT T1.a FROM T1".into(),
            transformed_sql: "SELECT T1.a FROM T1".into(),
            hint_label: "default".into(),
            expected_rows: 1,
            observed_rows: 0,
            fired: vec![fault],
            minimized_sql: None,
            fingerprint: Some(fp),
            keys: Default::default(),
        }
    }

    #[test]
    fn admit_separates_new_classes_from_sightings() {
        let mut t = BugTriage::new();
        let first = t.admit(report(1, FaultKind::SemiJoinWrongResults), 0);
        assert_eq!(first, Some(0));
        assert_eq!(t.admit(report(1, FaultKind::SemiJoinWrongResults), 3), None);
        assert_eq!(
            t.admit(report(2, FaultKind::SemiJoinWrongResults), 1),
            Some(1)
        );
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.sightings(), 3);
        assert_eq!(t.class(0).sightings, 2);
        assert_eq!(t.class(0).cell_id, 0);
        assert_eq!(t.class_keys().len(), 2);
    }

    #[test]
    fn fault_classes_collapse_plan_variants() {
        let mut t = BugTriage::new();
        t.admit(report(1, FaultKind::MergeJoinDropsLastRun), 0);
        t.admit(report(2, FaultKind::MergeJoinDropsLastRun), 0);
        t.admit(report(3, FaultKind::SemiJoinWrongResults), 1);
        assert_eq!(t.class_count(), 3);
        let faults = t.fault_classes();
        assert_eq!(faults.len(), 2);
        assert!(faults.contains("MergeJoinDropsLastRun"));
    }

    #[test]
    fn set_minimized_updates_the_representative() {
        let mut t = BugTriage::new();
        let idx = t
            .admit(report(9, FaultKind::SemiJoinWrongResults), 0)
            .unwrap();
        t.set_minimized(idx, "SELECT 1".into());
        assert_eq!(
            t.class(idx).representative.minimized_sql.as_deref(),
            Some("SELECT 1")
        );
    }
}
