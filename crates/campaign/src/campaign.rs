//! The campaign orchestrator: a long-running, sharded, resumable bug hunt.
//!
//! A campaign turns the one-shot explorer into a service-shaped workload:
//!
//! 1. **Cell grid.** The hunt is the cross product (wide-table shard ×
//!    fault profile × oracle). Each cell is an independent, deterministic
//!    unit: its query stream is seeded by `(campaign seed, cell id)` and its
//!    data partition is fixed, so a cell always produces the same verdicts
//!    no matter when, where or after how many kills it runs.
//! 2. **Fleet.** Cells are dealt onto work-stealing queues
//!    ([`crate::scheduler::WorkQueues`]) and drained by worker threads, each
//!    holding a zero-copy replica of its shard's catalog.
//! 3. **Triage.** Raw divergences are deduplicated campaign-wide by
//!    plan-fingerprint class ([`crate::triage::BugTriage`]); each new class
//!    is minimized once and persisted with its witness trace.
//! 4. **Persistence.** `checkpoint.jsonl` journals drained cells;
//!    `corpus.jsonl` accumulates bug classes. [`Campaign::resume`] replays
//!    both and continues with the missing cells — a killed-and-resumed
//!    campaign converges to the identical deduplicated bug-class set as an
//!    uninterrupted one.

use crate::checkpoint::{CellRecord, Checkpoint, CheckpointHeader, RunRecord};
use crate::corpus::{Corpus, CorpusEntry, StoredStatement};
use crate::json::Json;
use crate::scheduler::WorkQueues;
use crate::stats::{CampaignStats, LiveStats, RunTotals};
use crate::status::StatusBoard;
use crate::supervisor::{
    retry_append, AppendOptions, Quarantine, QuarantineEntry, SupervisorConfig,
};
use crate::triage::BugTriage;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tqs_core::backend::{DbmsConnector, EngineConnector, RecordingConnector};
use tqs_core::bugs::{minimize_with_oracle, BugReport, KeyCache, OracleKind};
use tqs_core::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator};
use tqs_core::kqe::{Kqe, KqeConfig, KqeScorer};
use tqs_core::mutation::{DmlGenConfig, DmlGenerator, DmlOracle};
use tqs_core::oracle::{DifferentialOracle, Oracle, OracleVerdict, PlanSpaceOracle, TqsOracle};
use tqs_engine::cancel::CancelToken;
use tqs_engine::ProfileId;
use tqs_graph::embedding::embed_graph;
use tqs_graph::plangraph::{graph_fingerprint, query_graph_with_subqueries};
use tqs_graph::GraphIndex;
use tqs_sql::render::render_stmt;

/// Engine-level statement executions in a recorded trace slice.
fn count_statements(events: &[tqs_core::backend::TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, tqs_core::backend::TraceEvent::Statement { .. }))
        .count()
}

/// Which executor a cell's build-under-test runs on. A second grid axis
/// next to [`OracleSpec`]: the same fault profile hunts once per engine, and
/// each engine carries its own fault complement (row faults, columnar
/// faults, disk/storage faults), so the engine axis decides *which* latent
/// bugs are reachable in the cell at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The row-at-a-time in-memory executor (the paper's model).
    Row,
    /// The columnar batch executor sharing the optimizer.
    Columnar,
    /// The disk-backed executor over the `tqs-pager` page store (buffer
    /// pool, WAL, B+trees) with the storage-layer fault complement.
    Disk,
}

impl EngineKind {
    pub const ALL: [EngineKind; 3] = [EngineKind::Row, EngineKind::Columnar, EngineKind::Disk];

    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Row => "row",
            EngineKind::Columnar => "columnar",
            EngineKind::Disk => "disk",
        }
    }

    pub fn from_label(label: &str) -> Result<EngineKind, String> {
        Self::ALL
            .into_iter()
            .find(|e| e.label() == label)
            .ok_or_else(|| format!("unknown engine kind `{label}`"))
    }

    /// The seeded-fault build of this engine, catalog not yet loaded (so a
    /// recording wrapper can journal the load).
    pub fn faulty(self, profile: ProfileId) -> EngineConnector {
        match self {
            EngineKind::Row => EngineConnector::faulty(profile),
            EngineKind::Columnar => EngineConnector::columnar(profile),
            EngineKind::Disk => EngineConnector::disk(profile),
        }
    }

    /// The seeded-fault build of this engine, catalog loaded from `shard`.
    pub fn connect_faulty(self, profile: ProfileId, shard: &Arc<DsgDatabase>) -> EngineConnector {
        match self {
            EngineKind::Row => EngineConnector::connect(profile, shard),
            EngineKind::Columnar => EngineConnector::connect_columnar(profile, shard),
            EngineKind::Disk => EngineConnector::connect_disk(profile, shard),
        }
    }

    /// The fault-free build of this engine, catalog loaded from `shard`.
    pub fn connect_pristine(self, profile: ProfileId, shard: &Arc<DsgDatabase>) -> EngineConnector {
        match self {
            EngineKind::Row => EngineConnector::connect_pristine(profile, shard),
            EngineKind::Columnar => EngineConnector::connect_columnar_pristine(profile, shard),
            EngineKind::Disk => EngineConnector::connect_disk_pristine(profile, shard),
        }
    }
}

/// How many physical plans a cell hunts per statement — the plan-space grid
/// axis. `Single` is the historical behavior (the oracle's own hint-set
/// transformations); `Space` swaps the cell's verdict procedure for the
/// [`PlanSpaceOracle`]: every statement is lowered through the optimizer,
/// its full plan space enumerated (cost-ranked top-K plus seeded samples)
/// and *every* enumerated plan executed and verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// One plan per hint set, as the cell's oracle defines.
    Single,
    /// The enumerated optimizer plan space per statement.
    Space,
}

impl PlanMode {
    pub const ALL: [PlanMode; 2] = [PlanMode::Single, PlanMode::Space];

    pub fn label(self) -> &'static str {
        match self {
            PlanMode::Single => "single",
            PlanMode::Space => "space",
        }
    }

    pub fn from_label(label: &str) -> Result<PlanMode, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.label() == label)
            .ok_or_else(|| format!("unknown plan mode `{label}`"))
    }
}

/// What kind of statement stream a cell hunts with — the workload grid
/// axis. `Select` is the historical behavior (generated join queries judged
/// by the cell's oracle); `Dml` swaps the stream for generated mutation
/// programs (INSERT/UPDATE/DELETE plus transaction control) judged by the
/// delta-maintained mutation ground truth
/// ([`DmlOracle`](tqs_core::mutation::DmlOracle)), which is what reaches the
/// engines' seeded DML fault complement ([`tqs_engine::FaultKind::DML`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Generated SELECT statements through the cell's oracle.
    Select,
    /// Generated DML + transaction programs through the mutation oracle.
    Dml,
}

impl Workload {
    pub const ALL: [Workload; 2] = [Workload::Select, Workload::Dml];

    pub fn label(self) -> &'static str {
        match self {
            Workload::Select => "select",
            Workload::Dml => "dml",
        }
    }

    pub fn from_label(label: &str) -> Result<Workload, String> {
        Self::ALL
            .into_iter()
            .find(|w| w.label() == label)
            .ok_or_else(|| format!("unknown workload `{label}`"))
    }
}

/// Which verdict procedure a cell drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleSpec {
    /// The paper's oracle: every hinted plan against the shard's wide-table
    /// ground truth.
    GroundTruth,
    /// Cross-engine differential testing: the faulty build against one
    /// pristine replica on a *different* engine (columnar, unless the cell
    /// itself runs columnar, in which case row).
    CrossEngine,
    /// Three-way differential testing: the faulty build against pristine
    /// replicas of *both other* engines, judged by majority vote — a faulty
    /// reference can be outvoted, which a single-reference differential
    /// oracle cannot do.
    ThreeWay,
}

impl OracleSpec {
    pub fn label(self) -> &'static str {
        match self {
            OracleSpec::GroundTruth => "ground-truth",
            OracleSpec::CrossEngine => "cross-engine",
            OracleSpec::ThreeWay => "three-way",
        }
    }

    /// Build the verdict procedure for one cell. Differential oracles pick
    /// their references among the engines *other than* the cell's own, so a
    /// reference never shares the build-under-test's fault complement.
    pub(crate) fn build(
        self,
        profile: ProfileId,
        engine: EngineKind,
        shard: &Arc<DsgDatabase>,
    ) -> Box<dyn Oracle> {
        match self {
            OracleSpec::GroundTruth => Box::new(TqsOracle::shared(Arc::clone(shard))),
            OracleSpec::CrossEngine => {
                let reference = if engine == EngineKind::Columnar {
                    EngineKind::Row
                } else {
                    EngineKind::Columnar
                };
                Box::new(DifferentialOracle::new(
                    reference.connect_pristine(profile, shard),
                ))
            }
            OracleSpec::ThreeWay => {
                let references: Vec<Box<dyn DbmsConnector>> = EngineKind::ALL
                    .into_iter()
                    .filter(|e| *e != engine)
                    .map(|e| Box::new(e.connect_pristine(profile, shard)) as Box<dyn DbmsConnector>)
                    .collect();
                Box::new(DifferentialOracle::panel(references))
            }
        }
    }
}

/// Campaign configuration. The `(seed, shards, profiles, oracles,
/// queries_per_cell)` tuple is the campaign's *identity* — it determines the
/// cell grid and every cell's behavior, and is pinned in the checkpoint
/// header so a resume cannot silently run a different hunt in the same
/// directory. `workers` and `max_cells_per_run` are operational knobs and
/// may change between runs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign directory: holds `checkpoint.jsonl` and `corpus.jsonl`.
    pub dir: PathBuf,
    /// The testing-database recipe (wide-table source, FDs, noise).
    pub dsg: DsgConfig,
    /// Row-range shards the wide table is split into (≥ 1).
    pub shards: usize,
    /// Worker threads draining the cell grid.
    pub workers: usize,
    /// Engine builds under test (one cell column per profile).
    pub profiles: Vec<ProfileId>,
    /// Verdict procedures (one cell column per oracle).
    pub oracles: Vec<OracleSpec>,
    /// Executors under test (one cell column per engine). Part of the
    /// campaign identity like `profiles`/`oracles`.
    pub engines: Vec<EngineKind>,
    /// Plan modes hunted (one cell column per mode). Part of the campaign
    /// identity; `[Single]` reproduces the historical grid exactly.
    pub plan_modes: Vec<PlanMode>,
    /// Statement workloads hunted (one cell column per workload). Part of
    /// the campaign identity; `[Select]` reproduces the historical grid
    /// exactly.
    pub workloads: Vec<Workload>,
    /// Query budget per cell — cells are budget-bound, not wall-clock-bound,
    /// which is what makes them deterministic and resumable.
    pub queries_per_cell: usize,
    pub seed: u64,
    /// Minimize one representative per newly discovered class.
    pub minimize: bool,
    /// Stop the run after draining this many cells (the remaining cells stay
    /// queued for the next run) — bounded sessions and kill-testing.
    pub max_cells_per_run: Option<usize>,
    /// Supervised-runtime knobs: deadlines, retry/quarantine policy, append
    /// durability and chaos injection. Operational (not part of the campaign
    /// identity): a resume may use different supervision than the run that
    /// created the journal.
    pub supervisor: SupervisorConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            dir: PathBuf::from("campaign-run"),
            dsg: DsgConfig::default(),
            shards: 2,
            workers: 2,
            profiles: vec![ProfileId::MysqlLike],
            oracles: vec![OracleSpec::GroundTruth],
            engines: vec![EngineKind::Row],
            plan_modes: vec![PlanMode::Single],
            workloads: vec![Workload::Select],
            queries_per_cell: 100,
            seed: 7,
            minimize: true,
            max_cells_per_run: None,
            supervisor: SupervisorConfig::default(),
        }
    }
}

impl CampaignConfig {
    fn header(&self) -> CheckpointHeader {
        CheckpointHeader {
            seed: self.seed,
            dsg_digest: self.dsg_digest(),
            shards: self.shards.max(1),
            cells: self.cell_grid().len(),
            queries_per_cell: self.queries_per_cell,
            profiles: self.profiles.iter().map(|p| p.name().to_string()).collect(),
            oracles: self.oracles.iter().map(|o| o.label().to_string()).collect(),
            engines: self.engines.iter().map(|e| e.label().to_string()).collect(),
            plan_modes: self
                .plan_modes
                .iter()
                .map(|m| m.label().to_string())
                .collect(),
            workloads: self
                .workloads
                .iter()
                .map(|w| w.label().to_string())
                .collect(),
        }
    }

    /// Digest of the testing-database recipe (source, FD discovery, noise).
    /// Pinned in the checkpoint header: the shard databases a resume rebuilds
    /// are a pure function of `dsg`, so a changed recipe must be rejected,
    /// not silently hunted. `DsgConfig`'s `Debug` rendering covers every
    /// field and is deterministic, which is all a tamper check needs.
    fn dsg_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in format!("{:?}", self.dsg).as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// The full cell grid, in id order. Newer axes go innermost so a
    /// campaign not using them keeps exactly the cell ids it had before the
    /// axis existed (corpus entries name cells by id): engine inside oracle,
    /// plan mode inside engine, workload inside plan mode.
    fn cell_grid(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::new();
        for shard in 0..self.shards.max(1) {
            for &profile in &self.profiles {
                for &oracle in &self.oracles {
                    for &engine in &self.engines {
                        for &plan_mode in &self.plan_modes {
                            for &workload in &self.workloads {
                                cells.push(CampaignCell {
                                    id: cells.len(),
                                    shard,
                                    profile,
                                    oracle,
                                    engine,
                                    plan_mode,
                                    workload,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One schedulable work unit: hunt one shard on one engine build with one
/// oracle for `queries_per_cell` statements.
#[derive(Debug, Clone, Copy)]
pub struct CampaignCell {
    pub id: usize,
    /// Index into the campaign's shard databases.
    pub shard: usize,
    pub profile: ProfileId,
    pub oracle: OracleSpec,
    pub engine: EngineKind,
    pub plan_mode: PlanMode,
    pub workload: Workload,
}

impl CampaignCell {
    /// The verdict procedure of this cell: the configured oracle in
    /// single-plan mode, the [`PlanSpaceOracle`] in plan-space mode (the
    /// plan-space hunt subsumes the per-oracle hint transformations — every
    /// enumerated plan is checked against the shard's ground truth). The
    /// single construction point shared by the hunt ([`Campaign::run`]) and
    /// both re-verification legs, so a witness always replays under the
    /// oracle that recorded it.
    pub(crate) fn build_oracle(&self, shard: &Arc<DsgDatabase>) -> Box<dyn Oracle> {
        match self.plan_mode {
            PlanMode::Single => self.oracle.build(self.profile, self.engine, shard),
            PlanMode::Space => Box::new(PlanSpaceOracle::shared(Arc::clone(shard))),
        }
    }
}

/// A sharded, resumable hunt campaign (see the module docs).
pub struct Campaign {
    cfg: CampaignConfig,
    shards: Vec<Arc<DsgDatabase>>,
    cells: Vec<CampaignCell>,
    done: HashSet<usize>,
    triage: BugTriage,
    corpus: Corpus,
    checkpoint: Checkpoint,
    /// Campaign files whose torn final line (kill mid-append) was truncated
    /// when this campaign resumed — surfaced through [`CampaignStats`]
    /// instead of stderr so fleets and CI see the repair in the artifact.
    torn_tails_repaired: usize,
    /// Totals of every finished run before this process's runs, replayed
    /// from the journal's run records; [`Campaign::run`] folds each of its
    /// own runs in so rates stay cumulative within a process too.
    prior: RunTotals,
    /// Live progress published for status readers (the HTTP endpoint).
    status: Arc<StatusBoard>,
    /// The journaled poison list (cells that exhausted their retry budget).
    quarantine_journal: Quarantine,
    /// Quarantined cells, loaded from the journal on resume and extended as
    /// the fleet gives up on cells. Quarantined cells are neither pending
    /// nor done — they are accounted for separately.
    quarantine: Vec<QuarantineEntry>,
    /// Graceful-stop flag shared with [`CampaignStopHandle`]s; workers check
    /// it before taking another cell.
    stop: Arc<AtomicBool>,
}

/// A cloneable handle requesting a graceful stop of a running [`Campaign`]:
/// in-flight cells finish, the run checkpoint is written, and `run` returns
/// `Ok` with the partial stats. Obtain one with [`Campaign::stop_handle`]
/// *before* calling `run` (which borrows the campaign mutably).
#[derive(Clone)]
pub struct CampaignStopHandle {
    flag: Arc<AtomicBool>,
    board: Arc<StatusBoard>,
}

impl CampaignStopHandle {
    /// Request a graceful stop. Idempotent; takes effect at the next
    /// cell boundary of each worker.
    pub fn request_stop(&self) {
        tqs_telemetry::counter!("campaign.supervisor.stop_requests").incr();
        self.flag.store(true, Ordering::Relaxed);
        self.board.request_stop();
    }

    pub fn is_stop_requested(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl Campaign {
    /// Start a fresh campaign: build the shard databases (wide table
    /// generated once, FDs shared), write the checkpoint header, and leave
    /// every cell pending. Fails if the directory already holds a campaign —
    /// use [`resume`](Self::resume) for that.
    pub fn new(cfg: CampaignConfig) -> io::Result<Campaign> {
        std::fs::create_dir_all(&cfg.dir)?;
        let checkpoint = Checkpoint::in_dir(&cfg.dir);
        if checkpoint.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a campaign checkpoint; use Campaign::resume",
                    cfg.dir.display()
                ),
            ));
        }
        checkpoint.create(&cfg.header())?;
        Ok(Campaign {
            shards: DsgDatabase::build_sharded(&cfg.dsg, cfg.shards),
            cells: cfg.cell_grid(),
            done: HashSet::new(),
            triage: BugTriage::new(),
            corpus: Corpus::in_dir(&cfg.dir),
            checkpoint,
            torn_tails_repaired: 0,
            prior: RunTotals::default(),
            status: Arc::new(StatusBoard::new()),
            quarantine_journal: Quarantine::in_dir(&cfg.dir),
            quarantine: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    /// Resume a campaign from its directory: replay the checkpoint journal
    /// (which cells are drained) and the corpus (which bug classes are
    /// known), rebuild the shard databases from the same seed, and leave the
    /// missing cells pending. The journal header must match `cfg`'s
    /// identity.
    pub fn resume(cfg: CampaignConfig) -> io::Result<Campaign> {
        let checkpoint = Checkpoint::in_dir(&cfg.dir);
        // A kill mid-append leaves a torn final line; truncate it so this
        // run's appends start on a fresh line instead of merging into it.
        // The repairs are counted (not logged) — `CampaignStats` carries
        // them into the run's machine-readable artifact.
        let quarantine_journal = Quarantine::in_dir(&cfg.dir);
        let torn_tails_repaired = usize::from(checkpoint.repair_torn_tail()?)
            + usize::from(Corpus::in_dir(&cfg.dir).repair_torn_tail()?)
            + usize::from(quarantine_journal.repair_torn_tail()?);
        let loaded = checkpoint.load()?;
        let header = loaded.header;
        let expected = cfg.header();
        if header != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: checkpoint header does not match the configuration \
                     (on disk: {header:?}, configured: {expected:?})",
                    cfg.dir.display()
                ),
            ));
        }
        let corpus = Corpus::in_dir(&cfg.dir);
        let mut triage = BugTriage::new();
        for entry in corpus.load()? {
            if entry.report.class_key() != entry.class_key {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: corpus class key `{}` disagrees with its report",
                        corpus.path().display(),
                        entry.class_key
                    ),
                ));
            }
            triage.admit(entry.report, entry.cell_id);
        }
        let cells = cfg.cell_grid();
        let done: HashSet<usize> = loaded
            .cells
            .iter()
            .map(|r| r.cell_id)
            .filter(|id| *id < cells.len())
            .collect();
        // Sum the journal's run records so the resumed campaign's rates are
        // cumulative — the clock keeps running across kill/resume instead
        // of resetting with each process.
        let prior = loaded
            .runs
            .iter()
            .fold(RunTotals::default(), |acc, r| RunTotals {
                elapsed: acc.elapsed + std::time::Duration::from_millis(r.elapsed_ms),
                queries: acc.queries + r.queries,
                statements: acc.statements + r.statements,
                plans: acc.plans + r.plans,
            });
        // The poison list survives resume: quarantined cells are neither
        // re-run nor lost. (A torn final line was already repaired above —
        // its cell simply stays pending and gets another chance.)
        let mut seen_poisoned = HashSet::new();
        let quarantine: Vec<QuarantineEntry> = quarantine_journal
            .load()?
            .into_iter()
            .filter(|q| {
                q.cell_id < cells.len()
                    && !done.contains(&q.cell_id)
                    && seen_poisoned.insert(q.cell_id)
            })
            .collect();
        Ok(Campaign {
            shards: DsgDatabase::build_sharded(&cfg.dsg, cfg.shards),
            cells,
            done,
            triage,
            corpus,
            checkpoint,
            torn_tails_repaired,
            prior,
            status: Arc::new(StatusBoard::new()),
            quarantine_journal,
            quarantine,
            stop: Arc::new(AtomicBool::new(false)),
            cfg,
        })
    }

    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    pub fn triage(&self) -> &BugTriage {
        &self.triage
    }

    /// Torn final lines truncated when this campaign resumed (always 0 for
    /// a fresh campaign). Also carried in [`CampaignStats`].
    pub fn torn_tails_repaired(&self) -> usize {
        self.torn_tails_repaired
    }

    /// Totals of the campaign's previous runs (journal run records plus any
    /// runs this process already finished).
    pub fn prior_totals(&self) -> RunTotals {
        self.prior
    }

    /// The live-progress board. Hand this (it is `Arc`-shared) to a
    /// [`CampaignStatusServer`](crate::status::CampaignStatusServer) — or
    /// any other monitor thread — before calling [`run`](Self::run); it
    /// publishes snapshots for the whole run and the final stats afterward.
    pub fn status_board(&self) -> Arc<StatusBoard> {
        Arc::clone(&self.status)
    }

    /// The shard databases the fleet hunts (index = `CampaignCell::shard`).
    pub fn shards(&self) -> &[Arc<DsgDatabase>] {
        &self.shards
    }

    /// The full cell grid, in id order (`cells()[id].id == id`). Corpus
    /// entries name their discovering cell by id; re-verification resolves
    /// the shard and oracle of a persisted class through this.
    pub fn cells(&self) -> &[CampaignCell] {
        &self.cells
    }

    pub fn cells_total(&self) -> usize {
        self.cells.len()
    }

    pub fn cells_done(&self) -> usize {
        self.done.len()
    }

    /// Cells still pending, in id order. Quarantined cells are not pending —
    /// the fleet gave up on them and journaled why.
    pub fn pending_cells(&self) -> Vec<CampaignCell> {
        let poisoned: HashSet<usize> = self.quarantine.iter().map(|q| q.cell_id).collect();
        self.cells
            .iter()
            .filter(|c| !self.done.contains(&c.id) && !poisoned.contains(&c.id))
            .copied()
            .collect()
    }

    /// Every cell is either drained or quarantined — nothing left to hunt.
    pub fn is_complete(&self) -> bool {
        self.done.len() + self.quarantine.len() == self.cells.len()
    }

    /// The poison list: cells that exhausted their retry budget, with the
    /// attempt count and final failure reason. Survives kill+resume.
    pub fn quarantined(&self) -> &[QuarantineEntry] {
        &self.quarantine
    }

    /// A handle for requesting a graceful stop of a `run` in progress (from
    /// another thread — `run` borrows the campaign mutably). Workers finish
    /// their in-flight cell, the run record is journaled, and `run` returns
    /// `Ok`; `/status` reports `stopping` then `stopped`.
    pub fn stop_handle(&self) -> CampaignStopHandle {
        CampaignStopHandle {
            flag: Arc::clone(&self.stop),
            board: Arc::clone(&self.status),
        }
    }

    /// Request a graceful stop of the current/next `run` (see
    /// [`stop_handle`](Self::stop_handle)).
    pub fn request_stop(&self) {
        self.stop_handle().request_stop();
    }

    /// Durability settings for this campaign's journal appends, from the
    /// supervisor config.
    fn append_opts(&self) -> AppendOptions {
        AppendOptions {
            env: self.cfg.supervisor.env_faults.clone(),
            sync: self.cfg.supervisor.sync_appends,
        }
    }

    /// The deduplicated class-key set — the campaign's primary artifact.
    pub fn class_keys(&self) -> BTreeSet<String> {
        self.triage.class_keys()
    }

    /// Drain (up to `max_cells_per_run`) pending cells with the worker
    /// fleet, journaling each drained cell and appending every new bug class
    /// to the corpus as it is discovered. Returns this run's statistics.
    pub fn run(&mut self) -> io::Result<CampaignStats> {
        let _run_span = tqs_telemetry::span("campaign", "run");
        let pending = self.pending_cells();
        let budget = AtomicUsize::new(self.cfg.max_cells_per_run.unwrap_or(usize::MAX));
        let queues = WorkQueues::deal(self.cfg.workers, pending);
        let live = Arc::new(LiveStats::start_with_prior(self.prior));
        self.status.begin_run(
            Arc::clone(&live),
            self.cells.len(),
            self.done.len(),
            self.triage.class_count(),
            self.torn_tails_repaired,
        );
        let triage = Mutex::new(std::mem::take(&mut self.triage));
        let diversity = Mutex::new(GraphIndex::new());
        let io_lock = Mutex::new(());
        let failure: Mutex<Option<io::Error>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let drained: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let poisoned: Mutex<Vec<QuarantineEntry>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for worker in 0..queues.workers() {
                let queues = &queues;
                let live = &live;
                let triage = &triage;
                let diversity = &diversity;
                let io_lock = &io_lock;
                let failure = &failure;
                let abort = &abort;
                let drained = &drained;
                let poisoned = &poisoned;
                let budget = &budget;
                let this = &*self;
                scope.spawn(move || {
                    let sup = &this.cfg.supervisor;
                    'cells: while !abort.load(Ordering::Relaxed)
                        && !this.stop.load(Ordering::Relaxed)
                    {
                        // Reserve budget before taking a cell so a bounded
                        // run never over-drains.
                        if budget
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                                b.checked_sub(1)
                            })
                            .is_err()
                        {
                            break;
                        }
                        let Some(cell) = queues.pop(worker) else {
                            break;
                        };
                        // Supervised attempt loop: panics are caught and
                        // converted to HarnessPanic classes, failures retry
                        // with capped backoff, and a cell that exhausts the
                        // budget is quarantined instead of poisoning the run.
                        let mut attempt = 0u32;
                        loop {
                            attempt += 1;
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    this.run_cell(&cell, attempt, triage, diversity, live, io_lock)
                                }));
                            let reason = match outcome {
                                Ok(Ok(_record)) => {
                                    drained.lock().push(cell.id);
                                    live.cell_drained();
                                    continue 'cells;
                                }
                                Ok(Err(e)) => {
                                    tqs_telemetry::counter!("campaign.supervisor.cell_io_errors")
                                        .incr();
                                    e.to_string()
                                }
                                Err(payload) => {
                                    live.add_panic_caught();
                                    tqs_telemetry::counter!("campaign.supervisor.panics_caught")
                                        .incr();
                                    let text = panic_payload_text(payload.as_ref());
                                    // The panic is itself a finding: admit it
                                    // as a first-class bug class so the
                                    // incident is triaged, persisted and
                                    // re-verifiable like any other class.
                                    if let Err(e) = this
                                        .record_harness_panic(&cell, &text, triage, live, io_lock)
                                    {
                                        *failure.lock() = Some(e);
                                        abort.store(true, Ordering::Relaxed);
                                        break 'cells;
                                    }
                                    text
                                }
                            };
                            if attempt >= sup.max_attempts.max(1) {
                                let entry = QuarantineEntry {
                                    cell_id: cell.id,
                                    attempts: attempt,
                                    reason,
                                };
                                let appended = {
                                    let _io = io_lock.lock();
                                    retry_append(sup, &this.append_opts(), |opts| {
                                        this.quarantine_journal.append(&entry, opts)
                                    })
                                };
                                match appended {
                                    Ok(_) => {
                                        live.add_quarantined();
                                        tqs_telemetry::counter!("campaign.supervisor.quarantined")
                                            .incr();
                                        poisoned.lock().push(entry);
                                    }
                                    Err(e) => {
                                        *failure.lock() = Some(e);
                                        abort.store(true, Ordering::Relaxed);
                                        break 'cells;
                                    }
                                }
                                continue 'cells;
                            }
                            live.add_retry();
                            tqs_telemetry::counter!("campaign.supervisor.retries").incr();
                            std::thread::sleep(sup.backoff(attempt));
                        }
                    }
                });
            }
        });

        self.triage = triage.into_inner();
        for id in drained.into_inner() {
            self.done.insert(id);
        }
        self.quarantine.extend(poisoned.into_inner());
        if let Some(e) = failure.into_inner() {
            self.status.abort();
            return Err(e);
        }
        live.set_diversity(diversity.into_inner().isomorphic_set_count());
        let stats = live.snapshot(
            self.cells.len(),
            self.done.len(),
            self.triage.class_count(),
            self.torn_tails_repaired,
        );
        // Journal this run's totals and fold them into `prior` so both a
        // resumed process and a later `run()` in this one keep reporting
        // cumulative rates.
        let totals = live.run_totals();
        let run_record = RunRecord {
            elapsed_ms: totals.elapsed.as_millis() as u64,
            queries: totals.queries,
            statements: totals.statements,
            plans: totals.plans,
        };
        retry_append(&self.cfg.supervisor, &self.append_opts(), |opts| {
            self.checkpoint.append_run_with(&run_record, opts)
        })?;
        self.prior = RunTotals {
            elapsed: self.prior.elapsed + totals.elapsed,
            queries: self.prior.queries + totals.queries,
            statements: self.prior.statements + totals.statements,
            plans: self.prior.plans + totals.plans,
        };
        self.status.finish(stats.clone());
        Ok(stats)
    }

    /// Drain one cell: deterministic query stream, per-cell adaptive KQE
    /// scorer, campaign-wide triage, witness-trace persistence. `attempt` is
    /// the supervisor's 1-based attempt counter — everything the cell does is
    /// attempt-independent except the chaos panic decision, so a retried
    /// cell re-admits its findings as duplicates and the corpus stays
    /// deterministic.
    fn run_cell(
        &self,
        cell: &CampaignCell,
        attempt: u32,
        triage: &Mutex<BugTriage>,
        diversity: &Mutex<GraphIndex>,
        live: &LiveStats,
        io_lock: &Mutex<()>,
    ) -> io::Result<CellRecord> {
        let started = Instant::now();
        let mut cell_span = tqs_telemetry::span_with("campaign", || format!("cell-{}", cell.id));
        cell_span.arg("shard", Json::count(cell.shard));
        cell_span.arg("oracle", Json::str(cell.oracle.label()));
        cell_span.arg("engine", Json::str(cell.engine.label()));
        cell_span.arg("plan_mode", Json::str(cell.plan_mode.label()));
        cell_span.arg("workload", Json::str(cell.workload.label()));
        let shard = &self.shards[cell.shard];
        let mut conn = RecordingConnector::new(cell.engine.faulty(cell.profile));
        conn.load_catalog(&shard.db.catalog)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if cell.workload == Workload::Dml {
            return self.run_dml_cell(cell, attempt, shard, conn, triage, live, io_lock, started);
        }
        let mut oracle = cell.build_oracle(shard);
        // Per-cell KQE state: the adaptive walk stays deterministic for the
        // cell regardless of what the rest of the fleet is doing — the
        // property the resume guarantee rests on.
        let mut kqe = Kqe::new(shard.schema_desc.clone(), KqeConfig::default());
        let mut generator = QueryGenerator::new(QueryGenConfig {
            seed: self.cfg.seed ^ ((cell.id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..Default::default()
        });

        let sup = &self.cfg.supervisor;
        let cell_deadline = sup.cell_deadline.map(|d| started + d);
        let mut timed_out = false;
        let mut queries = 0usize;
        let mut raw_reports = 0usize;
        let mut new_classes = 0usize;
        for _ in 0..self.cfg.queries_per_cell {
            // The cell deadline is checked between statements (and folded
            // into each statement's cancel token below), so a timed-out cell
            // overruns its budget by at most one statement.
            if cell_deadline.is_some_and(|d| Instant::now() >= d) {
                timed_out = true;
                break;
            }
            let stmt = {
                let scorer = KqeScorer { kqe: &kqe };
                generator.generate(shard, None, &scorer)
            };
            let qg = query_graph_with_subqueries(&stmt, &shard.schema_desc);
            kqe.record(&qg);
            {
                let mut idx = diversity.lock();
                let e = embed_graph(&qg, 2);
                idx.insert(&qg, e);
                live.set_diversity(idx.isomorphic_set_count());
            }
            // Drain (and count) the previous statement's engine events.
            live.add_statements(count_statements(&conn.take_trace()));
            // Statement budget: the engines poll the installed token at
            // operator boundaries; a cancelled statement errors out and the
            // oracle skips it — a timeout can never be misread as a bug.
            let _cancel = statement_deadline(sup, cell_deadline)
                .map(|d| CancelToken::with_deadline(d).install());
            let reports = match oracle.check(&stmt, &mut conn) {
                OracleVerdict::Skip => {
                    tqs_telemetry::counter!("campaign.oracle.skip").incr();
                    continue;
                }
                OracleVerdict::Pass => {
                    tqs_telemetry::counter!("campaign.oracle.pass").incr();
                    queries += 1;
                    live.add_queries(1);
                    continue;
                }
                OracleVerdict::Bugs(reports) => {
                    tqs_telemetry::counter!("campaign.oracle.bugs").incr();
                    queries += 1;
                    live.add_queries(1);
                    reports
                }
            };
            raw_reports += reports.len();
            live.add_raw_reports(reports.len());
            let fp = graph_fingerprint(&qg);
            // Materialized lazily: almost every report is a duplicate
            // sighting at fleet throughput, and copying full recorded result
            // sets for those would dominate the hot path. Must be captured
            // before the first minimization pollutes the trace.
            let mut witness: Option<Vec<StoredStatement>> = None;
            for report in reports {
                // Plan-space reports arrive pre-stamped with the plan
                // fingerprint; fold the query-graph fingerprint in so the
                // class key separates (structure, plan) pairs. Single-plan
                // reports carry no fingerprint yet — legacy class keys are
                // byte-identical.
                let combined = report.fingerprint.map(|pf| pf ^ fp).unwrap_or(fp);
                let mut report = report.with_fingerprint(combined);
                let admitted = triage.lock().admit(report.clone(), cell.id);
                let Some(class_idx) = admitted else {
                    continue; // duplicate sighting of a known class
                };
                new_classes += 1;
                live.add_new_class();
                let witness = witness.get_or_insert_with(|| {
                    conn.trace()
                        .iter()
                        .filter_map(StoredStatement::from_event)
                        .collect()
                });
                if self.cfg.minimize {
                    let minimized =
                        render_stmt(&minimize_with_oracle(&stmt, oracle.as_mut(), &mut conn));
                    triage.lock().set_minimized(class_idx, minimized.clone());
                    report.minimized_sql = Some(minimized);
                }
                let entry = CorpusEntry {
                    cell_id: cell.id,
                    class_key: report.class_key().to_string(),
                    connector: conn.info(),
                    report,
                    trace: witness.clone(),
                };
                let _io = io_lock.lock();
                retry_append(sup, &self.append_opts(), |opts| {
                    self.corpus.append_with(&entry, opts)
                })?;
            }
        }

        live.add_statements(count_statements(&conn.take_trace()));
        live.add_plans(oracle.plans_enumerated());

        if timed_out {
            live.add_deadline_cell();
            tqs_telemetry::counter!("campaign.supervisor.deadline_cells").incr();
        }
        // Chaos hook: fires between the hunting loop and the checkpoint
        // append, so a panicking attempt leaves its ordinary bug classes in
        // the corpus (admitted as duplicates on retry) but never checkpoints.
        self.maybe_chaos_panic(cell, attempt);

        let record = CellRecord {
            cell_id: cell.id,
            queries,
            raw_reports,
            new_classes,
            elapsed_ms: started.elapsed().as_millis() as u64,
            timeout: timed_out,
        };
        let _io = io_lock.lock();
        retry_append(sup, &self.append_opts(), |opts| {
            self.checkpoint.append_cell_with(&record, opts)
        })?;
        Ok(record)
    }

    /// Drain one mutation-workload cell: deterministic DML + transaction
    /// programs judged by the delta-maintained mutation ground truth. One
    /// "query" of the cell's budget is one whole program (the oracle reloads
    /// the pristine catalog per program, so programs are independent and the
    /// cell stays deterministic). Mutation reports have no single-statement
    /// reducer, so representatives are persisted unminimized; dedup runs
    /// through the same campaign-wide triage as every other cell.
    #[allow(clippy::too_many_arguments)]
    fn run_dml_cell(
        &self,
        cell: &CampaignCell,
        attempt: u32,
        shard: &Arc<DsgDatabase>,
        mut conn: RecordingConnector<EngineConnector>,
        triage: &Mutex<BugTriage>,
        live: &LiveStats,
        io_lock: &Mutex<()>,
        started: Instant,
    ) -> io::Result<CellRecord> {
        let oracle = DmlOracle::new(&shard.db.catalog);
        let mut generator = DmlGenerator::new(DmlGenConfig {
            seed: self.cfg.seed ^ ((cell.id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..Default::default()
        });

        let sup = &self.cfg.supervisor;
        let cell_deadline = sup.cell_deadline.map(|d| started + d);
        let mut timed_out = false;
        let mut queries = 0usize;
        let mut raw_reports = 0usize;
        let mut new_classes = 0usize;
        for _ in 0..self.cfg.queries_per_cell {
            if cell_deadline.is_some_and(|d| Instant::now() >= d) {
                timed_out = true;
                break;
            }
            let program = generator.generate_program(shard);
            // Drain (and count) the previous program's engine events.
            live.add_statements(count_statements(&conn.take_trace()));
            // No per-statement cancel token here, deliberately: the mutation
            // oracle compares two *stateful* executions statement by
            // statement, and cancelling one side mid-program would read as
            // semantic divergence — a deadline misreported as a bug. DML
            // cells are bounded by the cell deadline between programs.
            let reports = match oracle.check_program(&program, &mut conn) {
                OracleVerdict::Skip => {
                    tqs_telemetry::counter!("campaign.oracle.skip").incr();
                    continue;
                }
                OracleVerdict::Pass => {
                    tqs_telemetry::counter!("campaign.oracle.pass").incr();
                    queries += 1;
                    live.add_queries(1);
                    continue;
                }
                OracleVerdict::Bugs(reports) => {
                    tqs_telemetry::counter!("campaign.oracle.bugs").incr();
                    queries += 1;
                    live.add_queries(1);
                    reports
                }
            };
            raw_reports += reports.len();
            live.add_raw_reports(reports.len());
            // Same lazy witness capture as the select path: duplicates of a
            // known class never pay for copying the recorded result sets.
            let mut witness: Option<Vec<StoredStatement>> = None;
            for report in reports {
                let admitted = triage.lock().admit(report.clone(), cell.id);
                if admitted.is_none() {
                    continue; // duplicate sighting of a known class
                }
                new_classes += 1;
                live.add_new_class();
                let witness = witness.get_or_insert_with(|| {
                    conn.trace()
                        .iter()
                        .filter_map(StoredStatement::from_event)
                        .collect()
                });
                let entry = CorpusEntry {
                    cell_id: cell.id,
                    class_key: report.class_key().to_string(),
                    connector: conn.info(),
                    report,
                    trace: witness.clone(),
                };
                let _io = io_lock.lock();
                retry_append(sup, &self.append_opts(), |opts| {
                    self.corpus.append_with(&entry, opts)
                })?;
            }
        }

        live.add_statements(count_statements(&conn.take_trace()));

        if timed_out {
            live.add_deadline_cell();
            tqs_telemetry::counter!("campaign.supervisor.deadline_cells").incr();
        }
        self.maybe_chaos_panic(cell, attempt);

        let record = CellRecord {
            cell_id: cell.id,
            queries,
            raw_reports,
            new_classes,
            elapsed_ms: started.elapsed().as_millis() as u64,
            timeout: timed_out,
        };
        let _io = io_lock.lock();
        retry_append(sup, &self.append_opts(), |opts| {
            self.checkpoint.append_cell_with(&record, opts)
        })?;
        Ok(record)
    }

    /// Chaos hook for the supervision goldens: deterministically panic in a
    /// seeded subset of cells. The message is attempt-independent so that a
    /// killed-and-resumed chaos run produces bit-identical quarantine reasons.
    fn maybe_chaos_panic(&self, cell: &CampaignCell, attempt: u32) {
        if self.cfg.supervisor.chaos_panics(cell.id, attempt) {
            tqs_telemetry::counter!("campaign.supervisor.chaos_panics").incr();
            panic!("chaos: injected panic in cell {}", cell.id);
        }
    }

    /// Convert a caught worker panic into a first-class incident report: a
    /// `HarnessPanic` bug class keyed per cell, so the campaign's output
    /// records *that the harness failed* alongside what the engines did.
    /// Duplicate sightings (the retry attempts of a persistent panicker)
    /// dedup through ordinary triage and never re-enter the corpus.
    fn record_harness_panic(
        &self,
        cell: &CampaignCell,
        payload: &str,
        triage: &Mutex<BugTriage>,
        live: &LiveStats,
        io_lock: &Mutex<()>,
    ) -> io::Result<()> {
        let info = cell.engine.faulty(cell.profile).info();
        let report = BugReport {
            dbms: info.name.clone(),
            oracle: OracleKind::HarnessPanic,
            sql: payload.to_string(),
            transformed_sql: String::new(),
            hint_label: format!("harness-panic:cell-{}", cell.id),
            expected_rows: 0,
            observed_rows: 0,
            fired: Vec::new(),
            minimized_sql: None,
            fingerprint: None,
            keys: KeyCache::default(),
        };
        let Some(_idx) = triage.lock().admit(report.clone(), cell.id) else {
            return Ok(()); // repeat panic of an already-recorded cell
        };
        live.add_raw_reports(1);
        live.add_new_class();
        let entry = CorpusEntry {
            cell_id: cell.id,
            class_key: report.class_key().to_string(),
            connector: info,
            report,
            trace: Vec::new(),
        };
        let _io = io_lock.lock();
        retry_append(&self.cfg.supervisor, &self.append_opts(), |opts| {
            self.corpus.append_with(&entry, opts)
        })?;
        Ok(())
    }
}

/// The effective deadline for one statement: the per-statement budget, the
/// cell deadline, or (when both are set) whichever lands first.
fn statement_deadline(sup: &SupervisorConfig, cell_deadline: Option<Instant>) -> Option<Instant> {
    let stmt = sup.stmt_deadline.map(|d| Instant::now() + d);
    match (stmt, cell_deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Render a caught panic payload as text. `panic!` with a literal yields
/// `&str`; formatted panics yield `String`; anything else is opaque.
fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_core::dsg::WideSource;
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tqs-campaign-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg(dir: PathBuf) -> CampaignConfig {
        CampaignConfig {
            dir,
            dsg: DsgConfig {
                source: WideSource::Shopping(ShoppingConfig {
                    n_rows: 90,
                    ..Default::default()
                }),
                fd: Default::default(),
                noise: Some(NoiseConfig {
                    epsilon: 0.04,
                    seed: 3,
                    max_injections: 10,
                }),
            },
            shards: 2,
            workers: 2,
            profiles: vec![ProfileId::MysqlLike],
            oracles: vec![OracleSpec::GroundTruth],
            engines: vec![EngineKind::Row],
            plan_modes: vec![PlanMode::Single],
            workloads: vec![Workload::Select],
            queries_per_cell: 30,
            seed: 99,
            minimize: false,
            max_cells_per_run: None,
            supervisor: Default::default(),
        }
    }

    #[test]
    fn cell_grid_covers_the_cross_product_in_id_order() {
        let cfg = CampaignConfig {
            shards: 2,
            profiles: vec![ProfileId::MysqlLike, ProfileId::TidbLike],
            oracles: vec![OracleSpec::GroundTruth, OracleSpec::CrossEngine],
            engines: vec![EngineKind::Row, EngineKind::Disk],
            plan_modes: vec![PlanMode::Single, PlanMode::Space],
            workloads: vec![Workload::Select, Workload::Dml],
            ..small_cfg(test_dir("grid"))
        };
        let cells = cfg.cell_grid();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 2 * 2);
        assert!(cells.iter().enumerate().all(|(i, c)| c.id == i));
        assert_eq!(cells[0].shard, 0);
        assert_eq!(cells.last().unwrap().shard, 1);
        // Newest axis innermost: adjacent ids differ by workload first, then
        // plan mode, then engine, so campaigns not using an axis keep their
        // historical cell ids.
        assert_eq!(cells[0].workload, Workload::Select);
        assert_eq!(cells[1].workload, Workload::Dml);
        assert_eq!(cells[0].plan_mode, PlanMode::Single);
        assert_eq!(cells[2].plan_mode, PlanMode::Space);
        assert_eq!(cells[0].engine, EngineKind::Row);
        assert_eq!(cells[4].engine, EngineKind::Disk);
        assert_eq!(cells[0].oracle, cells[4].oracle);
        assert_eq!(cfg.header().cells, 64);
        assert_eq!(cfg.header().engines, vec!["row", "disk"]);
        assert_eq!(cfg.header().plan_modes, vec!["single", "space"]);
        assert_eq!(cfg.header().workloads, vec!["select", "dml"]);
    }

    #[test]
    fn plan_mode_labels_round_trip() {
        for m in PlanMode::ALL {
            assert_eq!(PlanMode::from_label(m.label()), Ok(m));
        }
        assert!(PlanMode::from_label("exhaustive").is_err());
    }

    #[test]
    fn workload_labels_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_label(w.label()), Ok(w));
        }
        assert!(Workload::from_label("ddl").is_err());
    }

    #[test]
    fn dml_cells_hunt_mutation_bug_classes() {
        let dir = test_dir("dml");
        let mut campaign = Campaign::new(CampaignConfig {
            shards: 1,
            workers: 1,
            workloads: vec![Workload::Dml],
            queries_per_cell: 10,
            ..small_cfg(dir.clone())
        })
        .unwrap();
        let stats = campaign.run().unwrap();
        assert!(campaign.is_complete());
        assert!(stats.queries > 0);
        assert!(
            stats.bug_classes > 0,
            "seeded DML faults should surface through the mutation workload"
        );
        // Every discovered class is a mutation class with DML provenance.
        for class in campaign.triage().classes() {
            assert_eq!(
                class.representative.oracle,
                tqs_core::bugs::OracleKind::Mutation
            );
            assert!(class
                .representative
                .fired
                .iter()
                .all(|f| tqs_engine::FaultKind::DML.contains(f)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_kind_labels_round_trip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::from_label(e.label()), Ok(e));
        }
        assert!(EngineKind::from_label("paper-tape").is_err());
    }

    #[test]
    fn fresh_campaign_runs_and_journals_every_cell() {
        let dir = test_dir("fresh");
        let mut campaign = Campaign::new(small_cfg(dir.clone())).unwrap();
        assert_eq!(campaign.cells_total(), 2);
        let stats = campaign.run().unwrap();
        assert!(campaign.is_complete());
        assert_eq!(stats.cells_drained, 2);
        assert!(stats.queries > 0);
        assert!(stats.queries_per_sec() > 0.0);
        assert!(stats.bug_classes > 0, "seeded faults should surface");
        assert!(stats.raw_reports >= stats.new_classes);
        // the journal holds header + one line per cell + the run's totals
        let loaded = campaign.checkpoint.load().unwrap();
        assert_eq!(loaded.cells.len(), 2);
        assert_eq!(loaded.runs.len(), 1);
        assert_eq!(loaded.runs[0].queries, stats.queries);
        // duplicate directory is refused
        assert!(Campaign::new(small_cfg(dir.clone())).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_a_mismatched_header() {
        let dir = test_dir("mismatch");
        let mut campaign = Campaign::new(small_cfg(dir.clone())).unwrap();
        campaign.run().unwrap();
        let refuse = |cfg: CampaignConfig| match Campaign::resume(cfg) {
            Ok(_) => panic!("resume accepted a mismatched header"),
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
        };
        refuse(CampaignConfig {
            seed: 1234,
            ..small_cfg(dir.clone())
        });
        // A changed testing-database recipe is just as much a different
        // campaign as a changed seed: the shard data would silently differ.
        let mut other_dsg = small_cfg(dir.clone());
        other_dsg.dsg.noise = None;
        refuse(other_dsg);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_runs_drain_in_installments() {
        let dir = test_dir("bounded");
        let mut campaign = Campaign::new(CampaignConfig {
            max_cells_per_run: Some(1),
            workers: 1,
            ..small_cfg(dir.clone())
        })
        .unwrap();
        let first = campaign.run().unwrap();
        assert_eq!(campaign.cells_done(), 1);
        assert!(!campaign.is_complete());
        assert!(first.prior.is_zero());
        let second = campaign.run().unwrap();
        assert!(campaign.is_complete());
        // The second run's rates are cumulative over both installments.
        assert_eq!(second.prior.queries, first.queries);
        assert_eq!(second.total_queries(), first.queries + second.queries);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumed_campaigns_carry_prior_run_totals() {
        use std::time::Duration;
        let dir = test_dir("prior");
        let mut campaign = Campaign::new(small_cfg(dir.clone())).unwrap();
        let first = campaign.run().unwrap();
        assert!(first.queries > 0);
        drop(campaign);
        // A fresh process resuming the directory starts with the first
        // run's totals on the books, so its rates never reset.
        let resumed = Campaign::resume(small_cfg(dir.clone())).unwrap();
        let prior = resumed.prior_totals();
        assert_eq!(prior.queries, first.queries);
        assert_eq!(prior.statements, first.statements);
        assert_eq!(prior.plans, first.plans);
        assert!(prior.elapsed <= first.elapsed + Duration::from_millis(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn minimized_representatives_still_fail() {
        let dir = test_dir("minimize");
        let mut campaign = Campaign::new(CampaignConfig {
            minimize: true,
            shards: 1,
            workers: 1,
            queries_per_cell: 60,
            ..small_cfg(dir.clone())
        })
        .unwrap();
        campaign.run().unwrap();
        let classes = campaign.triage().classes();
        assert!(!classes.is_empty());
        assert!(classes
            .iter()
            .all(|c| c.representative.minimized_sql.is_some()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
