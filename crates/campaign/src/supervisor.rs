//! The campaign supervision layer: retry policy, quarantine journal,
//! chaos-panic injection, and durable (atomic-or-absent) journal appends.
//!
//! The fleet used to be a fragile batch job — one worker panic or one
//! transient IO error on a corpus append aborted the whole run. The
//! supervisor makes the harness survive the failures it provokes:
//!
//! * **Panic isolation** — workers run each cell under `catch_unwind`; the
//!   panic becomes an `OracleKind::HarnessPanic` bug class and the worker
//!   moves on (see `Campaign::run`).
//! * **Retry + quarantine** — a failing cell retries with capped exponential
//!   backoff ([`SupervisorConfig::backoff`]); after
//!   [`SupervisorConfig::max_attempts`] failures it is journaled to a poison
//!   list ([`Quarantine`]) that survives kill+resume, so the cell is neither
//!   re-run nor lost.
//! * **Deadlines** — per-cell and per-statement wall-clock budgets enforced
//!   through the engine-side cancel token (`tqs_engine::cancel`).
//! * **Durable appends** — [`append_line_durable`] gives every corpus /
//!   checkpoint / quarantine append an fsync commit point and an
//!   atomic-or-absent contract: on any failure (real or injected via
//!   [`EnvFaultPolicy`]) the file is rolled back to its pre-append length.
//! * **Environmental fault injection** — [`SupervisorConfig::env_faults`]
//!   routes the campaign's own file IO through the seeded
//!   [`EnvFaultPolicy`] shim so chaos tests can prove all of the above.

use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::json::Json;
use tqs_pager::envfault::{EnvFaultOp, EnvFaultPolicy};

/// Operational knobs for the supervised runtime. These steer *how* a
/// campaign executes, not *what* it hunts, so they are deliberately not part
/// of the checkpoint header identity: a resumed campaign may use different
/// deadlines or retry budgets than the run that created the journal.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock budget for one cell. Checked between statements (and
    /// folded into each statement's cancel deadline), so a cell never
    /// exceeds its deadline by more than one statement. `None` = unbounded.
    pub cell_deadline: Option<Duration>,
    /// Wall-clock budget for one statement, enforced cooperatively inside
    /// the engines via the cancel token. `None` = unbounded.
    pub stmt_deadline: Option<Duration>,
    /// Attempts per cell (and per journal append) before giving up. The
    /// final journal-append attempt runs with fault injection suppressed,
    /// so injected environmental faults can never exhaust the budget.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt up to [`Self::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Fsync every corpus/checkpoint/quarantine append (the commit point).
    /// On by default; chaos tests rely on it for atomic-or-absent appends.
    pub sync_appends: bool,
    /// Chaos: make roughly this percentage of cells panic mid-hunt
    /// (deterministically from [`Self::chaos_seed`]). 0 = off. A third of
    /// the panicking cells are *persistent* offenders that panic on every
    /// attempt and end up quarantined; the rest panic only on the first
    /// attempt and succeed on retry.
    pub chaos_panic_pct: u8,
    /// Seed for the chaos panic decision function.
    pub chaos_seed: u64,
    /// Environmental fault policy for the campaign's own journal IO.
    pub env_faults: EnvFaultPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            cell_deadline: None,
            stmt_deadline: None,
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            sync_appends: true,
            chaos_panic_pct: 0,
            chaos_seed: 0,
            env_faults: EnvFaultPolicy::off(),
        }
    }
}

impl SupervisorConfig {
    /// Backoff before retry number `attempt` (1-based): base · 2^(attempt−1),
    /// capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }

    /// Chaos decision: does `cell_id` panic on this `attempt`? Pure function
    /// of `(chaos_seed, cell_id, attempt)`, so goldens can compute the
    /// expected panic set and a killed+resumed run reproduces the
    /// uninterrupted one bit-identically.
    pub fn chaos_panics(&self, cell_id: usize, attempt: u32) -> bool {
        if !self.chaos_picked(cell_id) {
            return false;
        }
        self.chaos_persistent(cell_id) || attempt == 1
    }

    /// Chaos decision: is `cell_id` a persistent offender (panics on every
    /// attempt, ends quarantined)?
    pub fn chaos_persistent(&self, cell_id: usize) -> bool {
        self.chaos_picked(cell_id) && (self.chaos_hash(cell_id) >> 8) % 3 == 0
    }

    fn chaos_picked(&self, cell_id: usize) -> bool {
        self.chaos_panic_pct > 0 && self.chaos_hash(cell_id) % 100 < u64::from(self.chaos_panic_pct)
    }

    fn chaos_hash(&self, cell_id: usize) -> u64 {
        splitmix64(self.chaos_seed ^ (cell_id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How a journal append is performed: through which fault policy, and
/// whether it carries an fsync commit point.
#[derive(Debug, Clone)]
pub struct AppendOptions {
    pub env: EnvFaultPolicy,
    pub sync: bool,
}

impl Default for AppendOptions {
    fn default() -> Self {
        AppendOptions {
            env: EnvFaultPolicy::off(),
            sync: true,
        }
    }
}

impl AppendOptions {
    /// The same durability settings with fault injection disabled — used for
    /// the final attempt of a retry loop so injected faults cannot exhaust
    /// the retry budget.
    pub fn without_faults(&self) -> AppendOptions {
        AppendOptions {
            env: EnvFaultPolicy::off(),
            sync: self.sync,
        }
    }
}

/// Append one line to a journal file with an atomic-or-absent contract: on
/// success the full line (and, with `sync`, its fsync) is on disk; on any
/// failure the file is rolled back to its pre-append length, so a retry
/// never produces a duplicate and a crash mid-append leaves at worst a torn
/// tail for the existing repair path.
pub(crate) fn append_line_durable(
    path: &Path,
    bytes: &[u8],
    opts: &AppendOptions,
) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    let start = f.metadata()?.len();
    let result = write_through_policy(&mut f, bytes, opts);
    if result.is_err() {
        // Roll back whatever prefix landed. This bypasses the fault policy:
        // the rollback models the caller discarding a torn tail, which the
        // resume path would otherwise do via repair_torn_tail. If even the
        // rollback fails we still report the original error; the line is
        // complete-or-torn on disk and both states are handled on load.
        let _ = f.set_len(start);
    }
    result
}

fn write_through_policy(
    f: &mut std::fs::File,
    bytes: &[u8],
    opts: &AppendOptions,
) -> io::Result<()> {
    if let Some(e) = opts.env.should_fail(EnvFaultOp::Write) {
        // Short write: half the line reaches the file before the EIO.
        let _ = f.write_all(&bytes[..bytes.len() / 2]);
        return Err(e);
    }
    f.write_all(bytes)?;
    if opts.sync {
        if let Some(e) = opts.env.should_fail(EnvFaultOp::Sync) {
            return Err(e);
        }
        f.sync_data()
    } else {
        f.flush()
    }
}

/// Retry a journal append under the supervisor's budget. All but the last
/// attempt run with the configured fault policy; the final attempt suppresses
/// injection, so only *real* IO errors can escape this function. Returns the
/// number of retries that were needed (0 = first attempt succeeded).
pub(crate) fn retry_append(
    sup: &SupervisorConfig,
    opts: &AppendOptions,
    mut op: impl FnMut(&AppendOptions) -> io::Result<()>,
) -> io::Result<u32> {
    let attempts = sup.max_attempts.max(1);
    let mut retries = 0u32;
    loop {
        let attempt = retries + 1;
        let effective = if attempt == attempts {
            opts.without_faults()
        } else {
            opts.clone()
        };
        match op(&effective) {
            Ok(()) => return Ok(retries),
            Err(e) if attempt >= attempts => return Err(e),
            Err(_) => {
                tqs_telemetry::counter!("campaign.supervisor.append_retries").incr();
                retries += 1;
                std::thread::sleep(sup.backoff(attempt));
            }
        }
    }
}

/// One quarantined cell: the poison-list journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    pub cell_id: usize,
    /// Attempts consumed before the cell was given up on.
    pub attempts: u32,
    /// Human-readable cause (panic payload or IO error text).
    pub reason: String,
}

impl QuarantineEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cell".to_string(), Json::count(self.cell_id)),
            ("attempts".to_string(), Json::num(f64::from(self.attempts))),
            ("reason".to_string(), Json::str(&self.reason)),
        ])
    }

    fn from_json(j: &Json) -> Result<QuarantineEntry, String> {
        let field = |k: &str| -> Result<&Json, String> {
            j.get(k)
                .ok_or_else(|| format!("quarantine entry missing `{k}`"))
        };
        Ok(QuarantineEntry {
            cell_id: field("cell")?.as_usize().ok_or("`cell` is not a number")?,
            attempts: field("attempts")?
                .as_f64()
                .ok_or("`attempts` is not a number")? as u32,
            reason: field("reason")?
                .as_str()
                .ok_or("`reason` is not a string")?
                .to_string(),
        })
    }
}

/// The journaled poison list: cells that exhausted their retry budget.
/// Append-only JSONL beside the corpus and checkpoint, with the same
/// torn-tail repair discipline, so it survives kill+resume.
#[derive(Debug, Clone)]
pub struct Quarantine {
    path: PathBuf,
}

impl Quarantine {
    pub const FILE_NAME: &'static str = "quarantine.jsonl";

    pub fn in_dir(dir: &Path) -> Quarantine {
        Quarantine {
            path: dir.join(Self::FILE_NAME),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Journal one quarantined cell (durable, atomic-or-absent).
    pub fn append(&self, entry: &QuarantineEntry, opts: &AppendOptions) -> io::Result<()> {
        tqs_telemetry::counter!("campaign.quarantine.appends").incr();
        let mut line = entry.to_json().to_string();
        line.push('\n');
        append_line_durable(&self.path, line.as_bytes(), opts)
    }

    /// Load the poison list. A missing file is an empty list; a torn final
    /// line is dropped (the entry's cell was never marked done, so a resume
    /// simply re-runs it — and re-quarantines it if it is still poisoned).
    pub fn load(&self) -> io::Result<Vec<QuarantineEntry>> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let lines: Vec<&str> = text.lines().collect();
        let mut entries = Vec::new();
        for (idx, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = Json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|j| QuarantineEntry::from_json(&j));
            match parsed {
                Ok(entry) => entries.push(entry),
                Err(err) => {
                    if idx + 1 == lines.len() && !text.ends_with('\n') {
                        tqs_telemetry::counter!("campaign.quarantine.torn_lines_dropped").incr();
                        continue;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("quarantine line {}: {err}", idx + 1),
                    ));
                }
            }
        }
        Ok(entries)
    }

    /// Truncate a torn trailing line in place (byte-level, like the corpus
    /// and checkpoint repair). Returns true if bytes were dropped.
    pub fn repair_torn_tail(&self) -> io::Result<bool> {
        crate::corpus::repair_torn_tail(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tqs-supervisor-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let sup = SupervisorConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(70),
            ..Default::default()
        };
        assert_eq!(sup.backoff(1), Duration::from_millis(10));
        assert_eq!(sup.backoff(2), Duration::from_millis(20));
        assert_eq!(sup.backoff(3), Duration::from_millis(40));
        assert_eq!(sup.backoff(4), Duration::from_millis(70), "capped");
        assert_eq!(sup.backoff(40), Duration::from_millis(70), "shift clamped");
    }

    #[test]
    fn chaos_decisions_are_deterministic_and_partitioned() {
        let sup = SupervisorConfig {
            chaos_panic_pct: 40,
            chaos_seed: 0xC4A0,
            ..Default::default()
        };
        let picked: Vec<usize> = (0..100).filter(|&c| sup.chaos_panics(c, 1)).collect();
        assert!(picked.len() > 10, "~40% of 100 cells should panic");
        assert!(picked.len() < 70);
        for &c in &picked {
            // Persistent offenders panic on every attempt; transient ones
            // only on the first.
            let again = sup.chaos_panics(c, 2);
            assert_eq!(again, sup.chaos_persistent(c));
        }
        let off = SupervisorConfig::default();
        assert!((0..100).all(|c| !off.chaos_panics(c, 1)));
    }

    #[test]
    fn durable_append_rolls_back_on_injected_failure() {
        let dir = temp_dir("rollback");
        let path = dir.join("journal.jsonl");
        let good = AppendOptions::default();
        append_line_durable(&path, b"{\"n\": 1}\n", &good).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        // 100% failure rate: the first checked op fails.
        let bad = AppendOptions {
            env: EnvFaultPolicy::seeded(3, 100),
            sync: true,
        };
        let err = append_line_durable(&path, b"{\"n\": 2}\n", &bad).unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            before,
            "failed append left no bytes behind"
        );

        // And a retry through the supervisor budget lands it exactly once.
        let sup = SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let retries = retry_append(&sup, &bad, |opts| {
            append_line_durable(&path, b"{\"n\": 2}\n", opts)
        })
        .unwrap();
        assert!(retries >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"n\": 1}\n{\"n\": 2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_append_final_attempt_suppresses_injection() {
        let sup = SupervisorConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let opts = AppendOptions {
            env: EnvFaultPolicy::seeded(0, 100),
            sync: false,
        };
        let calls = AtomicU32::new(0);
        let retries = retry_append(&sup, &opts, |effective| {
            calls.fetch_add(1, Ordering::Relaxed);
            match effective.env.should_fail(EnvFaultOp::Rename) {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(retries, 1);
    }

    #[test]
    fn quarantine_round_trips_and_repairs_torn_tail() {
        let dir = temp_dir("quarantine");
        let q = Quarantine::in_dir(&dir);
        assert_eq!(q.load().unwrap(), Vec::new(), "missing file is empty");

        let opts = AppendOptions::default();
        let a = QuarantineEntry {
            cell_id: 3,
            attempts: 3,
            reason: "chaos: injected panic in cell 3".to_string(),
        };
        let b = QuarantineEntry {
            cell_id: 7,
            attempts: 2,
            reason: "io: disk full".to_string(),
        };
        q.append(&a, &opts).unwrap();
        q.append(&b, &opts).unwrap();
        assert_eq!(q.load().unwrap(), vec![a.clone(), b.clone()]);

        // Torn tail: dropped on load, truncated by repair.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(q.path()).unwrap();
            f.write_all(b"{\"cell\": 9, \"atte").unwrap();
        }
        assert_eq!(q.load().unwrap(), vec![a.clone(), b.clone()]);
        assert!(q.repair_torn_tail().unwrap());
        assert!(!q.repair_torn_tail().unwrap(), "idempotent");
        assert_eq!(q.load().unwrap(), vec![a, b]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
