//! # tqs-campaign
//!
//! Long-running, sharded, resumable bug-hunt campaigns on top of the TQS
//! harness. Where `tqs_core::parallel` answers "how fast can a fleet explore
//! for N seconds", this crate answers the production question: "keep hunting
//! this system for days, across partitions and engine builds, survive
//! restarts, and don't drown me in duplicate reports."
//!
//! * [`campaign`] — the orchestrator: the (shard × profile × oracle ×
//!   engine × plan mode × workload) cell grid, the worker fleet,
//!   [`Campaign::new`] / [`Campaign::resume`] / [`Campaign::run`].
//! * [`scheduler`] — work-stealing cell queues.
//! * [`triage`] — plan-fingerprint deduplication of raw divergences into bug
//!   classes, one minimized representative per class.
//! * [`corpus`] — the append-only JSONL bug corpus with replayable witness
//!   traces ([`CorpusEntry::replay_connector`]) and one-representative-per-
//!   class compaction ([`Corpus::compact`]).
//! * [`reverify`] — the regression subsystem: [`ReverifyCampaign`] replays
//!   every persisted bug class (witness replay + live re-execution) against
//!   chosen engine builds and classifies it `StillFailing` / `Fixed` /
//!   `Flaky` / `Stale`.
//! * [`checkpoint`] — the cell-completion journal behind resume, plus
//!   per-run totals so throughput rates stay cumulative across kill/resume.
//! * [`stats`] — live fleet counters and the `BENCH_campaign.json` snapshot.
//! * [`status`] — the live progress board and the `curl`-able HTTP/JSONL
//!   status endpoint ([`CampaignStatusServer`]).
//! * [`json`] — the dependency-free JSON used by all of the above (the
//!   workspace's serde is an offline no-op shim; the type itself now lives
//!   in `tqs-telemetry` and is re-exported here).
//!
//! ## Determinism contract
//!
//! Campaign cells are deterministic: a cell's query stream depends only on
//! `(campaign seed, cell id)` and its own per-cell KQE state, and its data
//! partition is fixed by the shard spec. Thread scheduling may reorder which
//! worker drains which cell — and therefore which duplicate sighting gets to
//! *name* a class first — but the deduplicated **bug-class set** of a
//! finished campaign is a pure function of the configuration. That is the
//! property the resume machinery leans on: kill a campaign at any point,
//! `resume` it (any number of times, with any worker count), and the final
//! class set is bit-identical to an uninterrupted run's.
//!
//! ## Quick start
//!
//! ```
//! use tqs_campaign::{Campaign, CampaignConfig, EngineKind, OracleSpec, PlanMode, Workload};
//! use tqs_core::dsg::{DsgConfig, WideSource};
//! use tqs_engine::ProfileId;
//! use tqs_storage::widegen::ShoppingConfig;
//!
//! let dir = std::env::temp_dir().join(format!("tqs-doc-campaign-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut campaign = Campaign::new(CampaignConfig {
//!     dir: dir.clone(),
//!     dsg: DsgConfig {
//!         source: WideSource::Shopping(ShoppingConfig { n_rows: 80, ..Default::default() }),
//!         ..Default::default()
//!     },
//!     shards: 2,
//!     workers: 2,
//!     profiles: vec![ProfileId::MysqlLike],
//!     oracles: vec![OracleSpec::GroundTruth],
//!     engines: vec![EngineKind::Row],
//!     plan_modes: vec![PlanMode::Single],
//!     workloads: vec![Workload::Select],
//!     queries_per_cell: 20,
//!     seed: 11,
//!     minimize: false,
//!     max_cells_per_run: None,
//!     supervisor: Default::default(),
//! })
//! .unwrap();
//! let stats = campaign.run().unwrap();
//! assert!(campaign.is_complete());
//! assert!(stats.queries > 0);
//! // The same directory resumes to the same (already complete) state.
//! let resumed = Campaign::resume(campaign.config().clone()).unwrap();
//! assert_eq!(resumed.class_keys(), campaign.class_keys());
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod corpus;
pub mod json;
pub mod reverify;
pub mod scheduler;
pub mod stats;
pub mod status;
pub mod supervisor;
pub mod triage;

pub use campaign::{
    Campaign, CampaignCell, CampaignConfig, CampaignStopHandle, EngineKind, OracleSpec, PlanMode,
    Workload,
};
pub use checkpoint::{CellRecord, Checkpoint, CheckpointHeader, CheckpointLoad, RunRecord};
pub use corpus::{CompactionStats, Corpus, CorpusEntry, StoredStatement};
pub use json::Json;
pub use reverify::{
    BuildSpec, ClassVerdict, ReverifyCampaign, ReverifyConfig, ReverifyReport, ReverifyStatus,
};
pub use scheduler::WorkQueues;
pub use stats::{CampaignStats, LiveStats, ReverifyStats, RunTotals};
pub use status::{CampaignStatusServer, StatusBoard};
pub use supervisor::{AppendOptions, Quarantine, QuarantineEntry, SupervisorConfig};
pub use triage::{BugTriage, TriageClass};
