//! Work-stealing cell queues for the campaign fleet.
//!
//! Cells — (shard × fault-profile × oracle) work units — are dealt
//! round-robin onto one deque per worker. A worker drains its own deque from
//! the front; when empty it steals from the *back* of the other deques, so
//! thieves and owners contend on opposite ends and a straggler worker never
//! strands undone cells. Campaign cells take seconds each, so simple
//! mutex-protected deques beat a lock-free implementation on clarity at no
//! measurable cost at this granularity.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// One deque per worker plus the stealing protocol.
pub struct WorkQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> WorkQueues<T> {
    /// Deal `items` round-robin onto `workers` deques (at least one).
    pub fn deal(workers: usize, items: impl IntoIterator<Item = T>) -> WorkQueues<T> {
        let workers = workers.max(1);
        let queues: Vec<Mutex<VecDeque<T>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].lock().push_back(item);
        }
        WorkQueues { queues }
    }

    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Items left across all deques.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// Next cell for `worker`: its own deque front first, then a steal from
    /// the back of the first non-empty deque scanning from its right-hand
    /// neighbor. `None` means the whole grid is drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        let own = worker % n;
        if let Some(item) = self.queues[own].lock().pop_front() {
            return Some(item);
        }
        for off in 1..n {
            if let Some(item) = self.queues[(own + off) % n].lock().pop_back() {
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deals_round_robin_and_drains_completely() {
        let q = WorkQueues::deal(3, 0..10);
        assert_eq!(q.workers(), 3);
        assert_eq!(q.remaining(), 10);
        let mut seen: Vec<usize> = Vec::new();
        // worker 1 drains everything: its own cells first, then steals
        while let Some(c) = q.pop(1) {
            seen.push(c);
        }
        assert_eq!(q.remaining(), 0);
        seen.sort();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn own_cells_come_first_then_steals_from_the_back() {
        let q = WorkQueues::deal(2, 0..6);
        // worker 0 owns [0, 2, 4], worker 1 owns [1, 3, 5]
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(4));
        // now steal: from the back of worker 1's deque
        assert_eq!(q.pop(0), Some(5));
        assert_eq!(q.pop(1), Some(1));
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let q = WorkQueues::deal(0, ["only"]);
        assert_eq!(q.workers(), 1);
        assert_eq!(q.pop(0), Some("only"));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn concurrent_workers_drain_without_duplication() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = WorkQueues::deal(4, 0..100);
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                let counts = &counts;
                s.spawn(move || {
                    while let Some(c) = q.pop(w) {
                        counts[c].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
