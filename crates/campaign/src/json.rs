//! Dependency-free JSON — re-exported from `tqs-telemetry`.
//!
//! The hand-rolled JSON value/parser/printer started life here (the corpus,
//! checkpoint and bench artifacts all speak it) but moved to the bottom of
//! the crate graph when the telemetry layer landed, so metrics snapshots and
//! Chrome-trace export can use it without depending on campaign machinery.
//! This module keeps every existing `tqs_campaign::json::Json` /
//! `tqs_campaign::Json` path working.

pub use tqs_telemetry::json::{Json, JsonError};
