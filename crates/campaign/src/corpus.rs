//! The append-only JSONL bug corpus.
//!
//! Every time the campaign triage admits a *new* bug class, one line is
//! appended to `corpus.jsonl` in the campaign directory: the representative
//! [`BugReport`] (minimized when the reducer ran), the class key, and the
//! witness trace — the recorded statements and full result sets that
//! established the divergence. The trace is enough to rebuild a
//! [`ReplayConnector`], so any persisted bug re-executes bit-for-bit without
//! the engine build that produced it.
//!
//! The format is line-oriented on purpose: appends from concurrent workers
//! serialize through one lock, a killed campaign loses at most the final
//! partial line (which [`Corpus::load`] skips), and `grep` works on it.

use crate::json::Json;
use std::fs::OpenOptions;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use tqs_core::backend::{ConnectorInfo, ReplayConnector, SqlOutcome, TraceEvent};
use tqs_core::bugs::{BugReport, OracleKind};
use tqs_engine::{FaultKind, ProfileId};
use tqs_sql::value::{Decimal, Value};
use tqs_storage::{ResultSet, Row};

/// One recorded statement of a witness trace: the rendered SQL, the hint-set
/// label it ran under, and the full outcome (result rows + fired faults, or
/// the error message).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredStatement {
    pub label: String,
    pub sql: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub fired: Vec<FaultKind>,
    pub error: Option<String>,
}

/// One corpus line: a deduplicated bug class with its representative report
/// and replayable witness trace.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Id of the campaign cell that discovered the class.
    pub cell_id: usize,
    /// The triage key ([`BugReport::class_key`]) the fleet deduplicates on.
    pub class_key: String,
    /// Metadata of the backend build that produced the witness trace.
    pub connector: ConnectorInfo,
    pub report: BugReport,
    pub trace: Vec<StoredStatement>,
}

// ---------------------------------------------------------------------------
// enum <-> label round-trips (serde is a no-op shim in this workspace)
// ---------------------------------------------------------------------------

fn fault_label(f: FaultKind) -> String {
    format!("{f:?}")
}

fn fault_from_label(label: &str) -> Result<FaultKind, String> {
    FaultKind::ALL
        .iter()
        .chain(FaultKind::COLUMNAR.iter())
        .chain(FaultKind::DISK.iter())
        .chain(FaultKind::OPTIMIZER.iter())
        .chain(FaultKind::DML.iter())
        .copied()
        .find(|f| fault_label(*f) == label)
        .ok_or_else(|| format!("unknown fault kind `{label}`"))
}

fn oracle_kind_label(k: OracleKind) -> String {
    format!("{k:?}")
}

fn oracle_kind_from_label(label: &str) -> Result<OracleKind, String> {
    const ALL: [OracleKind; 9] = [
        OracleKind::GroundTruth,
        OracleKind::Differential,
        OracleKind::CrossEngine,
        OracleKind::PivotMissing,
        OracleKind::Partitioning,
        OracleKind::NonOptimizingRewrite,
        OracleKind::PlanSpace,
        OracleKind::Mutation,
        OracleKind::HarnessPanic,
    ];
    ALL.into_iter()
        .find(|k| oracle_kind_label(*k) == label)
        .ok_or_else(|| format!("unknown oracle kind `{label}`"))
}

fn profile_from_name(name: &str) -> Result<ProfileId, String> {
    ProfileId::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown profile `{name}`"))
}

// ---------------------------------------------------------------------------
// Value <-> Json (exact round-trip: everything is a tagged string pair)
// ---------------------------------------------------------------------------

/// `Value` as a `[tag, text]` pair. Numeric payloads go through strings so
/// i64/u64/i128 widths and float bit patterns survive the f64-only JSON
/// number space.
pub fn value_to_json(v: &Value) -> Json {
    let (tag, text) = match v {
        Value::Null => ("null", String::new()),
        Value::Bool(b) => ("bool", b.to_string()),
        Value::Int(i) => ("int", i.to_string()),
        Value::UInt(u) => ("uint", u.to_string()),
        // Debug-formatting floats yields the shortest round-trip decimal.
        Value::Float(f) => ("float", format!("{f:?}")),
        Value::Double(d) => ("double", format!("{d:?}")),
        Value::Decimal(d) => ("dec", format!("{}/{}", d.mantissa, d.scale)),
        Value::Varchar(s) => ("str", s.clone()),
        Value::Text(s) => ("text", s.clone()),
        Value::Date(d) => ("date", d.to_string()),
    };
    Json::Arr(vec![Json::str(tag), Json::str(text)])
}

pub fn value_from_json(j: &Json) -> Result<Value, String> {
    let pair = j.as_arr().ok_or("value must be a [tag, text] pair")?;
    let [tag, text] = pair else {
        return Err(format!("value pair has {} elements", pair.len()));
    };
    let tag = tag.as_str().ok_or("value tag must be a string")?;
    let text = text.as_str().ok_or("value text must be a string")?;
    fn num<T: std::str::FromStr>(tag: &str, text: &str) -> Result<T, String> {
        text.parse()
            .map_err(|_| format!("bad {tag} payload `{text}`"))
    }
    Ok(match tag {
        "null" => Value::Null,
        "bool" => Value::Bool(num(tag, text)?),
        "int" => Value::Int(num(tag, text)?),
        "uint" => Value::UInt(num(tag, text)?),
        "float" => Value::Float(num(tag, text)?),
        "double" => Value::Double(num(tag, text)?),
        "dec" => {
            let (m, s) = text
                .split_once('/')
                .ok_or_else(|| format!("bad decimal `{text}`"))?;
            Value::Decimal(Decimal::new(
                m.parse().map_err(|_| format!("bad mantissa `{m}`"))?,
                s.parse().map_err(|_| format!("bad scale `{s}`"))?,
            ))
        }
        "str" => Value::Varchar(text.to_string()),
        "text" => Value::Text(text.to_string()),
        "date" => Value::Date(num(tag, text)?),
        other => return Err(format!("unknown value tag `{other}`")),
    })
}

// ---------------------------------------------------------------------------
// StoredStatement / CorpusEntry <-> Json
// ---------------------------------------------------------------------------

impl StoredStatement {
    /// Convert a recorded [`TraceEvent`] (statement events only; catalog
    /// loads and explains carry no replayable outcome a bug witness needs).
    pub fn from_event(ev: &TraceEvent) -> Option<StoredStatement> {
        let TraceEvent::Statement {
            label,
            sql,
            outcome,
        } = ev
        else {
            return None;
        };
        Some(match outcome {
            Ok(out) => StoredStatement {
                label: label.clone(),
                sql: sql.clone(),
                columns: out.result.columns.clone(),
                rows: out.result.rows.iter().map(|r| r.values.clone()).collect(),
                fired: out.fired.clone(),
                error: None,
            },
            Err(e) => StoredStatement {
                label: label.clone(),
                sql: sql.clone(),
                columns: Vec::new(),
                rows: Vec::new(),
                fired: Vec::new(),
                error: Some(e.clone()),
            },
        })
    }

    /// Back to a [`TraceEvent`] for [`ReplayConnector::from_trace`].
    pub fn to_event(&self) -> TraceEvent {
        let outcome = match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(SqlOutcome {
                result: ResultSet {
                    columns: self.columns.clone(),
                    rows: self.rows.iter().cloned().map(Row::new).collect(),
                },
                fired: self.fired.clone(),
            }),
        };
        TraceEvent::Statement {
            label: self.label.clone(),
            sql: self.sql.clone(),
            outcome,
        }
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("label".to_string(), Json::str(&self.label)),
            ("sql".to_string(), Json::str(&self.sql)),
            (
                "columns".to_string(),
                Json::Arr(self.columns.iter().map(Json::str).collect()),
            ),
            (
                "rows".to_string(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
                        .collect(),
                ),
            ),
            (
                "fired".to_string(),
                Json::Arr(
                    self.fired
                        .iter()
                        .map(|f| Json::str(fault_label(*f)))
                        .collect(),
                ),
            ),
        ];
        if let Some(e) = &self.error {
            members.push(("error".to_string(), Json::str(e)));
        }
        Json::Obj(members)
    }

    fn from_json(j: &Json) -> Result<StoredStatement, String> {
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("statement missing `{k}`"))
        };
        let rows = j
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("statement missing `rows`")?
            .iter()
            .map(|r| {
                r.as_arr()
                    .ok_or_else(|| "row must be an array".to_string())?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<Value>, String>>()
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(StoredStatement {
            label: str_field("label")?,
            sql: str_field("sql")?,
            columns: json_string_list(j.get("columns"), "columns")?,
            rows,
            fired: json_string_list(j.get("fired"), "fired")?
                .iter()
                .map(|l| fault_from_label(l))
                .collect::<Result<Vec<_>, String>>()?,
            error: j.get("error").and_then(Json::as_str).map(String::from),
        })
    }
}

fn json_string_list(j: Option<&Json>, what: &str) -> Result<Vec<String>, String> {
    j.and_then(Json::as_arr)
        .ok_or_else(|| format!("missing `{what}` list"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(String::from)
                .ok_or_else(|| format!("`{what}` entries must be strings"))
        })
        .collect()
}

impl CorpusEntry {
    /// A replay backend serving this entry's witness trace: the stored
    /// statements come back with their recorded result sets, everything else
    /// misses (exactly like any unrecorded statement on a replay backend).
    pub fn replay_connector(&self) -> ReplayConnector {
        ReplayConnector::from_trace(
            self.connector.clone(),
            self.trace.iter().map(StoredStatement::to_event).collect(),
        )
    }

    pub fn to_json(&self) -> Json {
        let r = &self.report;
        let mut members = vec![
            ("cell".to_string(), Json::count(self.cell_id)),
            ("class".to_string(), Json::str(&self.class_key)),
            ("dbms".to_string(), Json::str(&self.connector.name)),
            ("version".to_string(), Json::str(&self.connector.version)),
            (
                "dialect".to_string(),
                Json::str(self.connector.dialect.name()),
            ),
            ("oracle".to_string(), Json::str(oracle_kind_label(r.oracle))),
            ("sql".to_string(), Json::str(&r.sql)),
            ("transformed_sql".to_string(), Json::str(&r.transformed_sql)),
            ("hint_label".to_string(), Json::str(&r.hint_label)),
            ("expected_rows".to_string(), Json::count(r.expected_rows)),
            ("observed_rows".to_string(), Json::count(r.observed_rows)),
            (
                "fired".to_string(),
                Json::Arr(r.fired.iter().map(|f| Json::str(fault_label(*f))).collect()),
            ),
        ];
        // Emitted only when true, so corpora from fault-free builds stay
        // byte-identical to the pre-optimizer format.
        if self.connector.seeded_faults {
            members.push(("seeded".to_string(), Json::Bool(true)));
        }
        if let Some(m) = &r.minimized_sql {
            members.push(("minimized_sql".to_string(), Json::str(m)));
        }
        if let Some(fp) = r.fingerprint {
            members.push(("fingerprint".to_string(), Json::str(format!("{fp:016x}"))));
        }
        members.push((
            "trace".to_string(),
            Json::Arr(self.trace.iter().map(StoredStatement::to_json).collect()),
        ));
        Json::Obj(members)
    }

    pub fn from_json(j: &Json) -> Result<CorpusEntry, String> {
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("corpus entry missing `{k}`"))
        };
        let count_field = |k: &str| -> Result<usize, String> {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("corpus entry missing `{k}`"))
        };
        let fingerprint = match j.get("fingerprint").and_then(Json::as_str) {
            Some(hex) => {
                Some(u64::from_str_radix(hex, 16).map_err(|_| format!("bad fingerprint `{hex}`"))?)
            }
            None => None,
        };
        let report = BugReport {
            dbms: str_field("dbms")?,
            oracle: oracle_kind_from_label(&str_field("oracle")?)?,
            sql: str_field("sql")?,
            transformed_sql: str_field("transformed_sql")?,
            hint_label: str_field("hint_label")?,
            expected_rows: count_field("expected_rows")?,
            observed_rows: count_field("observed_rows")?,
            fired: json_string_list(j.get("fired"), "fired")?
                .iter()
                .map(|l| fault_from_label(l))
                .collect::<Result<Vec<_>, String>>()?,
            minimized_sql: j
                .get("minimized_sql")
                .and_then(Json::as_str)
                .map(String::from),
            fingerprint,
            keys: Default::default(),
        };
        let trace = j
            .get("trace")
            .and_then(Json::as_arr)
            .ok_or("corpus entry missing `trace`")?
            .iter()
            .map(StoredStatement::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CorpusEntry {
            cell_id: count_field("cell")?,
            class_key: str_field("class")?,
            connector: ConnectorInfo {
                name: str_field("dbms")?,
                version: str_field("version")?,
                dialect: profile_from_name(&str_field("dialect")?)?,
                seeded_faults: j.get("seeded").and_then(Json::as_bool).unwrap_or(false),
            },
            report,
            trace,
        })
    }
}

/// Handle on the append-only corpus file of one campaign directory.
#[derive(Debug, Clone)]
pub struct Corpus {
    path: PathBuf,
}

impl Corpus {
    pub const FILE_NAME: &'static str = "corpus.jsonl";

    pub fn in_dir(dir: &Path) -> Corpus {
        Corpus {
            path: dir.join(Self::FILE_NAME),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry as a single line with the default durability
    /// settings (fsynced, no fault injection). Callers serialize appends
    /// through the campaign's io lock.
    pub fn append(&self, entry: &CorpusEntry) -> io::Result<()> {
        self.append_with(entry, &crate::supervisor::AppendOptions::default())
    }

    /// Append one entry through explicit durability options: atomic-or-absent
    /// (a failed append rolls the file back to its previous length), with an
    /// fsync commit point when `opts.sync`, and routed through the
    /// environmental fault policy for chaos testing.
    pub fn append_with(
        &self,
        entry: &CorpusEntry,
        opts: &crate::supervisor::AppendOptions,
    ) -> io::Result<()> {
        tqs_telemetry::counter!("campaign.corpus.appends").incr();
        let mut line = entry.to_json().to_string();
        line.push('\n');
        crate::supervisor::append_line_durable(&self.path, line.as_bytes(), opts)
    }

    /// Load every complete entry. A torn final line (campaign killed
    /// mid-append) is skipped; a malformed line elsewhere is an error —
    /// that's corruption, not an interrupted write.
    pub fn load(&self) -> io::Result<Vec<CorpusEntry>> {
        let mut text = String::new();
        match std::fs::File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut entries = Vec::new();
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).map_err(|e| (i, e.to_string()));
            let entry = parsed.and_then(|j| CorpusEntry::from_json(&j).map_err(|m| (i, m)));
            match entry {
                Ok(e) => entries.push(e),
                Err((idx, _)) if idx + 1 == lines.len() && !text.ends_with('\n') => {
                    // torn tail line from a kill mid-write: drop it
                    tqs_telemetry::counter!("campaign.corpus.torn_lines_dropped").incr();
                    tqs_telemetry::event_with("campaign", || {
                        (
                            "corpus.torn_line_dropped".to_string(),
                            vec![(
                                "path".to_string(),
                                Json::str(self.path.display().to_string()),
                            )],
                        )
                    });
                    break;
                }
                Err((idx, msg)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: line {}: {msg}", self.path.display(), idx + 1),
                    ));
                }
            }
        }
        Ok(entries)
    }

    /// Truncate a torn final line left by a kill mid-append (the file does
    /// not end in a newline), so the campaign's next append starts on a
    /// fresh line instead of merging into the partial record. Our writers
    /// emit each record and its newline in one write, so a missing final
    /// newline always means the last append never completed — dropping it is
    /// exactly the resume semantics. Returns whether anything was truncated;
    /// a healthy (or absent) file is untouched.
    pub fn repair_torn_tail(&self) -> io::Result<bool> {
        repair_torn_tail(&self.path)
    }

    /// Rewrite the corpus keeping **one representative entry per class key
    /// accepted by `retain`**: the class's first minimized entry, or its
    /// first entry when none was minimized. Classes `retain` rejects (fixed
    /// or stale under re-verification) are garbage-collected wholesale.
    ///
    /// Output order follows each surviving class's first appearance and the
    /// serialization is deterministic, so compaction is **idempotent**: a
    /// second pass over a compacted corpus rewrites it byte-identically.
    /// The rewrite goes through a temp file + rename, so a kill mid-compact
    /// leaves the original corpus intact.
    pub fn compact(&self, retain: impl Fn(&str) -> bool) -> io::Result<CompactionStats> {
        let entries = self.load()?;
        let mut kept: Vec<CorpusEntry> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut stats = CompactionStats::default();
        for entry in entries {
            if !retain(&entry.class_key) {
                stats.classes_dropped += 1;
                continue;
            }
            match index.get(&entry.class_key) {
                None => {
                    index.insert(entry.class_key.clone(), kept.len());
                    kept.push(entry);
                }
                Some(&at) => {
                    stats.duplicates_dropped += 1;
                    if kept[at].report.minimized_sql.is_none()
                        && entry.report.minimized_sql.is_some()
                    {
                        kept[at] = entry;
                    }
                }
            }
        }
        stats.kept = kept.len();
        let mut text = String::new();
        for entry in &kept {
            text.push_str(&entry.to_json().to_string());
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // Flush the data to disk before the rename commits: rename
            // metadata is not ordered after data blocks on every filesystem,
            // and a power cut in that window would replace the corpus with
            // an empty file — far worse than the torn tail appends risk.
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(stats)
    }
}

/// Shared torn-tail truncation for the line-oriented campaign files (the
/// corpus and the checkpoint journal). Works on raw bytes: a kill can land
/// mid-way through a multi-byte UTF-8 character, which would make a
/// string-level read fail with `InvalidData` — the very state this repair
/// exists to recover from.
pub(crate) fn repair_torn_tail(path: &Path) -> io::Result<bool> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(false);
    }
    let keep = bytes
        .iter()
        .rposition(|b| *b == b'\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(keep as u64)?;
    Ok(true)
}

/// Outcome of one [`Corpus::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Entries surviving the pass (one per retained class).
    pub kept: usize,
    /// Extra entries of retained classes that were collapsed away.
    pub duplicates_dropped: usize,
    /// Entries whose whole class was garbage-collected.
    pub classes_dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqs_core::backend::DbmsConnector;

    fn sample_entry() -> CorpusEntry {
        let report = BugReport {
            dbms: "MySQL-like".into(),
            oracle: OracleKind::GroundTruth,
            sql: "SELECT T1.a FROM T1".into(),
            transformed_sql: "SELECT /*+ HASH_JOIN(T1) */ T1.a FROM T1".into(),
            hint_label: "hash-join".into(),
            expected_rows: 3,
            observed_rows: 2,
            fired: vec![FaultKind::HashJoinNullMatchesEmpty],
            minimized_sql: Some("SELECT T1.a FROM T1".into()),
            fingerprint: Some(0xfeed_beef_dead_cafe),
            keys: Default::default(),
        };
        let trace = vec![
            StoredStatement {
                label: "hash-join".into(),
                sql: "SELECT T1.a FROM T1".into(),
                columns: vec!["a".into()],
                rows: vec![
                    vec![Value::Int(1)],
                    vec![Value::Null],
                    vec![Value::Decimal(Decimal::new(150, 2))],
                ],
                fired: vec![FaultKind::HashJoinNullMatchesEmpty],
                error: None,
            },
            StoredStatement {
                label: "sql".into(),
                sql: "SELECT x.a FROM missing x".into(),
                columns: vec![],
                rows: vec![],
                fired: vec![],
                error: Some("unknown table `missing`".into()),
            },
        ];
        CorpusEntry {
            cell_id: 7,
            class_key: report.class_key().to_string(),
            connector: ConnectorInfo {
                name: "MySQL-like".into(),
                version: "8.0.28-sim".into(),
                dialect: ProfileId::MysqlLike,
                seeded_faults: true,
            },
            report,
            trace,
        }
    }

    #[test]
    fn entries_round_trip_through_json() {
        let e = sample_entry();
        let j = e.to_json();
        let back = CorpusEntry::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back.cell_id, e.cell_id);
        assert_eq!(back.class_key, e.class_key);
        assert_eq!(back.report.fingerprint, e.report.fingerprint);
        assert_eq!(back.report.fired, e.report.fired);
        assert_eq!(back.report.class_key(), e.report.class_key());
        assert_eq!(back.trace, e.trace);
        assert_eq!(back.connector.dialect, ProfileId::MysqlLike);
    }

    #[test]
    fn mutation_entries_round_trip_through_json() {
        // A mutation-workload class: Mutation oracle kind, DML fault
        // provenance, a multi-statement program as its SQL, no fingerprint.
        let mut e = sample_entry();
        e.report.oracle = OracleKind::Mutation;
        e.report.sql = "INSERT INTO T1 (a) VALUES (1); COMMIT".into();
        e.report.hint_label = "dml".into();
        e.report.fired = vec![FaultKind::DmlRollbackLeaksInsertedRow];
        e.report.fingerprint = None;
        e.report.minimized_sql = None;
        e.report.keys = Default::default();
        e.class_key = e.report.class_key().to_string();
        let back = CorpusEntry::from_json(&Json::parse(&e.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.report.oracle, OracleKind::Mutation);
        assert_eq!(back.report.fired, e.report.fired);
        assert_eq!(back.class_key, e.class_key);
        assert_eq!(back.report.class_key(), e.report.class_key());
    }

    #[test]
    fn all_value_variants_round_trip() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5e-3),
            Value::Double(std::f64::consts::PI),
            Value::Decimal(Decimal::new(-12345, 3)),
            Value::str("a\"b\nc"),
            Value::text("long text"),
            Value::Date(19876),
        ];
        for v in values {
            let back = value_from_json(&Json::parse(&value_to_json(&v).to_string()).unwrap());
            assert_eq!(back.as_ref(), Ok(&v), "{v:?}");
        }
    }

    #[test]
    fn corpus_appends_and_loads_with_torn_tail() {
        let dir = std::env::temp_dir().join(format!("tqs-corpus-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = Corpus::in_dir(&dir);
        let _ = std::fs::remove_file(corpus.path());
        corpus.append(&sample_entry()).unwrap();
        corpus.append(&sample_entry()).unwrap();
        // simulate a kill mid-append
        {
            let mut f = OpenOptions::new().append(true).open(corpus.path()).unwrap();
            f.write_all(b"{\"cell\": 9, \"class\": \"torn").unwrap();
        }
        let loaded = corpus.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].class_key, sample_entry().class_key);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_truncates_tails_torn_inside_a_multibyte_char() {
        let dir = std::env::temp_dir().join(format!("tqs-torn-utf8-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = Corpus::in_dir(&dir);
        let _ = std::fs::remove_file(corpus.path());
        assert!(!corpus.repair_torn_tail().unwrap(), "absent file untouched");
        corpus.append(&sample_entry()).unwrap();
        assert!(
            !corpus.repair_torn_tail().unwrap(),
            "healthy file untouched"
        );
        // A kill can land mid-way through a multi-byte UTF-8 character:
        // 0xCE is the first byte of a two-byte sequence, never valid alone.
        {
            let mut f = OpenOptions::new().append(true).open(corpus.path()).unwrap();
            f.write_all(b"{\"class\": \"\xCE").unwrap();
        }
        assert!(corpus.repair_torn_tail().unwrap());
        assert_eq!(corpus.load().unwrap().len(), 1);
        assert!(!corpus.repair_torn_tail().unwrap(), "repair is idempotent");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_one_minimized_representative_per_surviving_class() {
        let dir = std::env::temp_dir().join(format!("tqs-compact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = Corpus::in_dir(&dir);
        let _ = std::fs::remove_file(corpus.path());
        // Class A twice (first sighting unminimized, second minimized) and
        // class B once; B's class is garbage-collected by `retain`.
        let mut raw = sample_entry();
        raw.report.minimized_sql = None;
        corpus.append(&raw).unwrap();
        corpus.append(&sample_entry()).unwrap();
        let mut fixed = sample_entry();
        // `with_fingerprint` resets the report's memoized keys; a direct
        // field write would leave the cached class key stale.
        fixed.report = fixed.report.clone().with_fingerprint(0x0B);
        fixed.class_key = fixed.report.class_key().to_string();
        corpus.append(&fixed).unwrap();

        let keep = sample_entry().class_key;
        let stats = corpus.compact(|k| k == keep).unwrap();
        assert_eq!(
            stats,
            CompactionStats {
                kept: 1,
                duplicates_dropped: 1,
                classes_dropped: 1,
            }
        );
        let survivors = corpus.load().unwrap();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].class_key, keep);
        assert!(survivors[0].report.minimized_sql.is_some());

        // Idempotent: the second pass is a byte-identical no-op.
        let before = std::fs::read(corpus.path()).unwrap();
        let again = corpus.compact(|k| k == keep).unwrap();
        assert_eq!((again.duplicates_dropped, again.classes_dropped), (0, 0));
        assert_eq!(std::fs::read(corpus.path()).unwrap(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn witness_trace_replays_through_replay_connector() {
        let e = sample_entry();
        let mut replay = e.replay_connector();
        assert_eq!(replay.info().name, "MySQL-like");
        let stmt = tqs_sql::parser::parse_stmt(&e.trace[0].sql).unwrap();
        let out = replay
            .execute_with_hints(&stmt, &tqs_sql::hints::HintSet::new("hash-join"))
            .unwrap();
        assert_eq!(out.result.row_count(), 3);
        assert_eq!(out.fired, vec![FaultKind::HashJoinNullMatchesEmpty]);
        // The recorded error replays as an error.
        assert!(replay.execute_sql("SELECT x.a FROM missing x").is_err());
    }
}
