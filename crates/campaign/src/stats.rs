//! Live and final campaign statistics.
//!
//! Workers publish progress through a shared, lock-free [`LiveStats`]; a
//! monitor (or the final report) snapshots it into [`CampaignStats`], the
//! machine-readable record that `exp_campaign` serializes into
//! `BENCH_campaign.json`.

use crate::json::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Shared atomic counters the worker fleet bumps as it hunts.
#[derive(Debug)]
pub struct LiveStats {
    started: Instant,
    /// Statements the oracles actually exercised (skips excluded).
    queries: AtomicUsize,
    /// Engine-level statements executed (every hinted plan, replay and
    /// minimization probe behind each oracle-level query) — the counter the
    /// execution hot path drives directly.
    statements: AtomicUsize,
    /// Optimizer-enumerated plans executed (plan-space cells only) — the
    /// paper's coverage unit: the same statement steered onto many plans.
    plans: AtomicUsize,
    /// Raw (pre-dedup) bug reports.
    raw_reports: AtomicUsize,
    /// Bug classes newly discovered this run.
    new_classes: AtomicUsize,
    /// Cells fully drained this run.
    cells_drained: AtomicUsize,
}

impl LiveStats {
    pub fn start() -> LiveStats {
        LiveStats {
            started: Instant::now(),
            queries: AtomicUsize::new(0),
            statements: AtomicUsize::new(0),
            plans: AtomicUsize::new(0),
            raw_reports: AtomicUsize::new(0),
            new_classes: AtomicUsize::new(0),
            cells_drained: AtomicUsize::new(0),
        }
    }

    pub fn add_queries(&self, n: usize) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_statements(&self, n: usize) {
        self.statements.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_plans(&self, n: usize) {
        self.plans.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_raw_reports(&self, n: usize) {
        self.raw_reports.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_new_class(&self) {
        self.new_classes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn cell_drained(&self) {
        self.cells_drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters. `total_classes`/`cells_total`/`diversity`/
    /// `torn_tails_repaired` come from the campaign (they include state
    /// resumed from disk, which the live counters deliberately do not).
    pub fn snapshot(
        &self,
        cells_total: usize,
        cells_done: usize,
        total_classes: usize,
        diversity: usize,
        torn_tails_repaired: usize,
    ) -> CampaignStats {
        CampaignStats {
            elapsed: self.started.elapsed(),
            queries: self.queries.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plans: self.plans.load(Ordering::Relaxed),
            raw_reports: self.raw_reports.load(Ordering::Relaxed),
            new_classes: self.new_classes.load(Ordering::Relaxed),
            cells_drained: self.cells_drained.load(Ordering::Relaxed),
            cells_done,
            cells_total,
            bug_classes: total_classes,
            diversity,
            torn_tails_repaired,
        }
    }
}

/// One snapshot of campaign progress (per *run* — a resumed campaign starts
/// fresh counters but carries its class/cell totals forward).
#[derive(Debug, Clone)]
pub struct CampaignStats {
    pub elapsed: Duration,
    /// Statements exercised this run.
    pub queries: usize,
    /// Engine-level statements executed this run (hinted plans, replays and
    /// minimization probes included).
    pub statements: usize,
    /// Optimizer-enumerated plans executed this run (plan-space cells only).
    pub plans: usize,
    /// Raw bug reports this run (pre-dedup).
    pub raw_reports: usize,
    /// Classes newly discovered this run.
    pub new_classes: usize,
    /// Cells drained this run.
    pub cells_drained: usize,
    /// Cells done overall, including previous runs of the campaign.
    pub cells_done: usize,
    pub cells_total: usize,
    /// Deduplicated bug classes overall (resumed state included).
    pub bug_classes: usize,
    /// Distinct isomorphic query structures explored this run.
    pub diversity: usize,
    /// Campaign files (checkpoint journal, corpus) whose torn final line —
    /// left by a kill mid-append — was truncated when this campaign resumed.
    pub torn_tails_repaired: usize,
}

impl CampaignStats {
    /// Fleet throughput: oracle-exercised statements per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Raw engine throughput: statements executed per wall-clock second —
    /// the rate the allocation-free execution path feeds directly.
    pub fn statements_per_sec(&self) -> f64 {
        self.statements as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Plan-space throughput: optimizer-enumerated plans executed per
    /// wall-clock second — the paper's coverage rate.
    pub fn plans_per_sec(&self) -> f64 {
        self.plans as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Raw divergence sightings per hour — the flood the triage collapses.
    pub fn raw_reports_per_hour(&self) -> f64 {
        self.raw_reports as f64 / (self.elapsed.as_secs_f64().max(1e-9) / 3600.0)
    }

    /// Newly discovered bug classes per hour of campaign time.
    pub fn bugs_per_hour(&self) -> f64 {
        self.new_classes as f64 / (self.elapsed.as_secs_f64().max(1e-9) / 3600.0)
    }

    /// Raw sightings per distinct class this run — how hard the fleet would
    /// drown a human without fingerprint triage. 0 when nothing was found.
    pub fn dedup_ratio(&self) -> f64 {
        if self.new_classes == 0 {
            return 0.0;
        }
        self.raw_reports as f64 / self.new_classes as f64
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "elapsed_sec".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            ("queries".to_string(), Json::count(self.queries)),
            (
                "queries_per_sec".to_string(),
                Json::Num(self.queries_per_sec()),
            ),
            ("statements".to_string(), Json::count(self.statements)),
            (
                "statements_per_sec".to_string(),
                Json::Num(self.statements_per_sec()),
            ),
            ("plans".to_string(), Json::count(self.plans)),
            ("plans_per_sec".to_string(), Json::Num(self.plans_per_sec())),
            ("raw_reports".to_string(), Json::count(self.raw_reports)),
            (
                "raw_reports_per_hour".to_string(),
                Json::Num(self.raw_reports_per_hour()),
            ),
            ("new_classes".to_string(), Json::count(self.new_classes)),
            ("bug_classes".to_string(), Json::count(self.bug_classes)),
            ("bugs_per_hour".to_string(), Json::Num(self.bugs_per_hour())),
            ("dedup_ratio".to_string(), Json::Num(self.dedup_ratio())),
            ("cells_drained".to_string(), Json::count(self.cells_drained)),
            ("cells_done".to_string(), Json::count(self.cells_done)),
            ("cells_total".to_string(), Json::count(self.cells_total)),
            ("diversity".to_string(), Json::count(self.diversity)),
            (
                "torn_tails_repaired".to_string(),
                Json::count(self.torn_tails_repaired),
            ),
        ])
    }
}

/// Summary of one re-verification run ([`crate::reverify::ReverifyCampaign`]):
/// how the persisted bug classes fared against each engine build. Serialized
/// into `BENCH_reverify.json` by `exp_reverify`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverifyStats {
    pub elapsed: Duration,
    /// Corpus entries examined (one per persisted bug class).
    pub entries: usize,
    /// Engine builds each class was re-executed against.
    pub builds: usize,
    /// Per-(class, build) verdicts issued (`entries × builds`).
    pub verdicts: usize,
    pub still_failing: usize,
    pub fixed: usize,
    pub flaky: usize,
    pub stale: usize,
}

impl ReverifyStats {
    /// Verdict throughput: (class, build) checks per wall-clock second.
    pub fn checks_per_sec(&self) -> f64 {
        self.verdicts as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "elapsed_sec".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            ("entries".to_string(), Json::count(self.entries)),
            ("builds".to_string(), Json::count(self.builds)),
            ("verdicts".to_string(), Json::count(self.verdicts)),
            (
                "checks_per_sec".to_string(),
                Json::Num(self.checks_per_sec()),
            ),
            ("still_failing".to_string(), Json::count(self.still_failing)),
            ("fixed".to_string(), Json::count(self.fixed)),
            ("flaky".to_string(), Json::count(self.flaky)),
            ("stale".to_string(), Json::count(self.stale)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_live_counters_and_campaign_totals() {
        let live = LiveStats::start();
        live.add_queries(10);
        live.add_queries(5);
        live.add_plans(34);
        live.add_raw_reports(6);
        live.add_new_class();
        live.add_new_class();
        live.cell_drained();
        let s = live.snapshot(8, 5, 4, 17, 1);
        assert_eq!(s.queries, 15);
        assert_eq!(s.plans, 34);
        assert_eq!(s.raw_reports, 6);
        assert_eq!(s.new_classes, 2);
        assert_eq!(s.cells_drained, 1);
        assert_eq!(s.cells_done, 5);
        assert_eq!(s.cells_total, 8);
        assert_eq!(s.bug_classes, 4);
        assert_eq!(s.diversity, 17);
        assert_eq!(s.torn_tails_repaired, 1);
        assert!((s.dedup_ratio() - 3.0).abs() < 1e-9);
        assert!(s.queries_per_sec() > 0.0);
    }

    #[test]
    fn json_snapshot_has_the_bench_fields() {
        let live = LiveStats::start();
        live.add_queries(4);
        let j = live.snapshot(2, 2, 1, 3, 0).to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        for key in [
            "elapsed_sec",
            "queries",
            "queries_per_sec",
            "plans",
            "plans_per_sec",
            "raw_reports",
            "bug_classes",
            "dedup_ratio",
            "cells_total",
            "diversity",
            "torn_tails_repaired",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        assert_eq!(parsed.get("queries").unwrap().as_usize(), Some(4));
    }

    #[test]
    fn dedup_ratio_is_zero_without_classes() {
        let live = LiveStats::start();
        live.add_raw_reports(3);
        assert_eq!(live.snapshot(1, 0, 0, 0, 0).dedup_ratio(), 0.0);
    }

    #[test]
    fn reverify_stats_serialize_the_verdict_counts() {
        let stats = ReverifyStats {
            elapsed: Duration::from_millis(500),
            entries: 6,
            builds: 2,
            verdicts: 12,
            still_failing: 6,
            fixed: 5,
            flaky: 0,
            stale: 1,
        };
        assert!(stats.checks_per_sec() > 0.0);
        let parsed = Json::parse(&stats.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("verdicts").unwrap().as_usize(), Some(12));
        assert_eq!(parsed.get("still_failing").unwrap().as_usize(), Some(6));
        assert_eq!(parsed.get("stale").unwrap().as_usize(), Some(1));
    }
}
