//! Live and final campaign statistics.
//!
//! Workers publish progress through a shared, lock-free [`LiveStats`]; a
//! monitor (or the final report) snapshots it into [`CampaignStats`], the
//! machine-readable record that `exp_campaign` serializes into
//! `BENCH_campaign.json`.

use crate::json::Json;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Totals carried over from a campaign's previous runs, replayed from the
/// checkpoint journal's run records on resume. Keeping them separate from
/// the live counters lets the per-run numbers stay honest while the rates
/// (`queries_per_sec`, `plans_per_sec`) report *cumulative* throughput —
/// a killed-and-resumed campaign no longer resets its clock and briefly
/// reports inflated (then deflated) rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunTotals {
    pub elapsed: Duration,
    pub queries: usize,
    pub statements: usize,
    pub plans: usize,
}

impl RunTotals {
    pub fn is_zero(&self) -> bool {
        *self == RunTotals::default()
    }
}

/// Shared atomic counters the worker fleet bumps as it hunts.
#[derive(Debug)]
pub struct LiveStats {
    started: Instant,
    /// Totals from this campaign's previous runs (zero for a fresh start).
    prior: RunTotals,
    /// Statements the oracles actually exercised (skips excluded).
    queries: AtomicUsize,
    /// Engine-level statements executed (every hinted plan, replay and
    /// minimization probe behind each oracle-level query) — the counter the
    /// execution hot path drives directly.
    statements: AtomicUsize,
    /// Optimizer-enumerated plans executed (plan-space cells only) — the
    /// paper's coverage unit: the same statement steered onto many plans.
    plans: AtomicUsize,
    /// Raw (pre-dedup) bug reports.
    raw_reports: AtomicUsize,
    /// Bug classes newly discovered this run.
    new_classes: AtomicUsize,
    /// Cells fully drained this run.
    cells_drained: AtomicUsize,
    /// Distinct isomorphic query structures explored so far (published by
    /// the fleet so live status readers see it mid-run).
    diversity: AtomicUsize,
    /// Worker panics caught and converted into `HarnessPanic` classes.
    panics_caught: AtomicUsize,
    /// Cell attempts retried after a failure (panic or IO error).
    retries: AtomicUsize,
    /// Cells quarantined after exhausting their retry budget.
    quarantined: AtomicUsize,
    /// Cells checkpointed complete-with-timeout (wall-clock deadline hit).
    deadline_cells: AtomicUsize,
}

impl LiveStats {
    pub fn start() -> LiveStats {
        LiveStats::start_with_prior(RunTotals::default())
    }

    /// Start a run's counters with the totals of the campaign's previous
    /// runs already on the books.
    pub fn start_with_prior(prior: RunTotals) -> LiveStats {
        LiveStats {
            started: Instant::now(),
            prior,
            queries: AtomicUsize::new(0),
            statements: AtomicUsize::new(0),
            plans: AtomicUsize::new(0),
            raw_reports: AtomicUsize::new(0),
            new_classes: AtomicUsize::new(0),
            cells_drained: AtomicUsize::new(0),
            diversity: AtomicUsize::new(0),
            panics_caught: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            deadline_cells: AtomicUsize::new(0),
        }
    }

    pub fn add_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_deadline_cell(&self) {
        self.deadline_cells.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_queries(&self, n: usize) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_statements(&self, n: usize) {
        self.statements.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_plans(&self, n: usize) {
        self.plans.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_raw_reports(&self, n: usize) {
        self.raw_reports.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_new_class(&self) {
        self.new_classes.fetch_add(1, Ordering::Relaxed);
    }

    pub fn cell_drained(&self) {
        self.cells_drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the campaign's current structural-diversity count so live
    /// status readers see it without touching the campaign's locks.
    pub fn set_diversity(&self, n: usize) {
        self.diversity.store(n, Ordering::Relaxed);
    }

    pub fn cells_drained(&self) -> usize {
        self.cells_drained.load(Ordering::Relaxed)
    }

    pub fn new_classes_found(&self) -> usize {
        self.new_classes.load(Ordering::Relaxed)
    }

    /// This run's totals in journal-record form (what `Checkpoint::append_run`
    /// persists so the next resume carries the clock forward).
    pub fn run_totals(&self) -> RunTotals {
        RunTotals {
            elapsed: self.started.elapsed(),
            queries: self.queries.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plans: self.plans.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the counters. `total_classes`/`cells_total`/
    /// `torn_tails_repaired` come from the campaign (they include state
    /// resumed from disk, which the live counters deliberately do not).
    pub fn snapshot(
        &self,
        cells_total: usize,
        cells_done: usize,
        total_classes: usize,
        torn_tails_repaired: usize,
    ) -> CampaignStats {
        CampaignStats {
            elapsed: self.started.elapsed(),
            prior: self.prior,
            queries: self.queries.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plans: self.plans.load(Ordering::Relaxed),
            raw_reports: self.raw_reports.load(Ordering::Relaxed),
            new_classes: self.new_classes.load(Ordering::Relaxed),
            cells_drained: self.cells_drained.load(Ordering::Relaxed),
            cells_done,
            cells_total,
            bug_classes: total_classes,
            diversity: self.diversity.load(Ordering::Relaxed),
            torn_tails_repaired,
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            deadline_cells: self.deadline_cells.load(Ordering::Relaxed),
        }
    }
}

/// One snapshot of campaign progress. Counters are per *run* — a resumed
/// campaign starts fresh counters but carries its class/cell totals forward
/// — while `prior` holds the previous runs' totals so the throughput rates
/// stay cumulative across kill/resume.
#[derive(Debug, Clone)]
pub struct CampaignStats {
    pub elapsed: Duration,
    /// Totals from the campaign's previous runs (zero for a fresh start).
    pub prior: RunTotals,
    /// Statements exercised this run.
    pub queries: usize,
    /// Engine-level statements executed this run (hinted plans, replays and
    /// minimization probes included).
    pub statements: usize,
    /// Optimizer-enumerated plans executed this run (plan-space cells only).
    pub plans: usize,
    /// Raw bug reports this run (pre-dedup).
    pub raw_reports: usize,
    /// Classes newly discovered this run.
    pub new_classes: usize,
    /// Cells drained this run.
    pub cells_drained: usize,
    /// Cells done overall, including previous runs of the campaign.
    pub cells_done: usize,
    pub cells_total: usize,
    /// Deduplicated bug classes overall (resumed state included).
    pub bug_classes: usize,
    /// Distinct isomorphic query structures explored this run.
    pub diversity: usize,
    /// Campaign files (checkpoint journal, corpus) whose torn final line —
    /// left by a kill mid-append — was truncated when this campaign resumed.
    pub torn_tails_repaired: usize,
    /// Worker panics caught and converted into `HarnessPanic` classes this
    /// run.
    pub panics_caught: usize,
    /// Cell attempts retried this run (after a panic or IO failure).
    pub retries: usize,
    /// Cells quarantined to the poison list this run.
    pub quarantined: usize,
    /// Cells checkpointed complete-with-timeout this run.
    pub deadline_cells: usize,
}

impl CampaignStats {
    /// Wall-clock across every run of the campaign, this one included.
    pub fn total_elapsed(&self) -> Duration {
        self.elapsed + self.prior.elapsed
    }

    /// Oracle-exercised statements across every run.
    pub fn total_queries(&self) -> usize {
        self.queries + self.prior.queries
    }

    /// Engine-level statements across every run.
    pub fn total_statements(&self) -> usize {
        self.statements + self.prior.statements
    }

    /// Optimizer-enumerated plans across every run.
    pub fn total_plans(&self) -> usize {
        self.plans + self.prior.plans
    }

    /// Fleet throughput: oracle-exercised statements per wall-clock second,
    /// cumulative across resume — the rate doesn't reset when a killed
    /// campaign restarts.
    pub fn queries_per_sec(&self) -> f64 {
        self.total_queries() as f64 / self.total_elapsed().as_secs_f64().max(1e-9)
    }

    /// Raw engine throughput: statements executed per wall-clock second —
    /// the rate the allocation-free execution path feeds directly.
    /// Cumulative across resume.
    pub fn statements_per_sec(&self) -> f64 {
        self.total_statements() as f64 / self.total_elapsed().as_secs_f64().max(1e-9)
    }

    /// Plan-space throughput: optimizer-enumerated plans executed per
    /// wall-clock second — the paper's coverage rate. Cumulative across
    /// resume.
    pub fn plans_per_sec(&self) -> f64 {
        self.total_plans() as f64 / self.total_elapsed().as_secs_f64().max(1e-9)
    }

    /// Raw divergence sightings per hour — the flood the triage collapses.
    pub fn raw_reports_per_hour(&self) -> f64 {
        self.raw_reports as f64 / (self.elapsed.as_secs_f64().max(1e-9) / 3600.0)
    }

    /// Newly discovered bug classes per hour of campaign time.
    pub fn bugs_per_hour(&self) -> f64 {
        self.new_classes as f64 / (self.elapsed.as_secs_f64().max(1e-9) / 3600.0)
    }

    /// Raw sightings per distinct class this run — how hard the fleet would
    /// drown a human without fingerprint triage. 0 when nothing was found.
    pub fn dedup_ratio(&self) -> f64 {
        if self.new_classes == 0 {
            return 0.0;
        }
        self.raw_reports as f64 / self.new_classes as f64
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "elapsed_sec".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            (
                "prior_elapsed_sec".to_string(),
                Json::Num(self.prior.elapsed.as_secs_f64()),
            ),
            (
                "total_elapsed_sec".to_string(),
                Json::Num(self.total_elapsed().as_secs_f64()),
            ),
            ("queries".to_string(), Json::count(self.queries)),
            (
                "total_queries".to_string(),
                Json::count(self.total_queries()),
            ),
            (
                "queries_per_sec".to_string(),
                Json::Num(self.queries_per_sec()),
            ),
            ("statements".to_string(), Json::count(self.statements)),
            (
                "total_statements".to_string(),
                Json::count(self.total_statements()),
            ),
            (
                "statements_per_sec".to_string(),
                Json::Num(self.statements_per_sec()),
            ),
            ("plans".to_string(), Json::count(self.plans)),
            ("total_plans".to_string(), Json::count(self.total_plans())),
            ("plans_per_sec".to_string(), Json::Num(self.plans_per_sec())),
            ("raw_reports".to_string(), Json::count(self.raw_reports)),
            (
                "raw_reports_per_hour".to_string(),
                Json::Num(self.raw_reports_per_hour()),
            ),
            ("new_classes".to_string(), Json::count(self.new_classes)),
            ("bug_classes".to_string(), Json::count(self.bug_classes)),
            ("bugs_per_hour".to_string(), Json::Num(self.bugs_per_hour())),
            ("dedup_ratio".to_string(), Json::Num(self.dedup_ratio())),
            ("cells_drained".to_string(), Json::count(self.cells_drained)),
            ("cells_done".to_string(), Json::count(self.cells_done)),
            ("cells_total".to_string(), Json::count(self.cells_total)),
            ("diversity".to_string(), Json::count(self.diversity)),
            (
                "torn_tails_repaired".to_string(),
                Json::count(self.torn_tails_repaired),
            ),
            ("panics_caught".to_string(), Json::count(self.panics_caught)),
            ("retries".to_string(), Json::count(self.retries)),
            ("quarantined".to_string(), Json::count(self.quarantined)),
            (
                "deadline_cells".to_string(),
                Json::count(self.deadline_cells),
            ),
        ])
    }
}

/// Summary of one re-verification run ([`crate::reverify::ReverifyCampaign`]):
/// how the persisted bug classes fared against each engine build. Serialized
/// into `BENCH_reverify.json` by `exp_reverify`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverifyStats {
    pub elapsed: Duration,
    /// Corpus entries examined (one per persisted bug class).
    pub entries: usize,
    /// Engine builds each class was re-executed against.
    pub builds: usize,
    /// Per-(class, build) verdicts issued (`entries × builds`).
    pub verdicts: usize,
    pub still_failing: usize,
    pub fixed: usize,
    pub flaky: usize,
    pub stale: usize,
}

impl ReverifyStats {
    /// Verdict throughput: (class, build) checks per wall-clock second.
    pub fn checks_per_sec(&self) -> f64 {
        self.verdicts as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "elapsed_sec".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            ("entries".to_string(), Json::count(self.entries)),
            ("builds".to_string(), Json::count(self.builds)),
            ("verdicts".to_string(), Json::count(self.verdicts)),
            (
                "checks_per_sec".to_string(),
                Json::Num(self.checks_per_sec()),
            ),
            ("still_failing".to_string(), Json::count(self.still_failing)),
            ("fixed".to_string(), Json::count(self.fixed)),
            ("flaky".to_string(), Json::count(self.flaky)),
            ("stale".to_string(), Json::count(self.stale)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_live_counters_and_campaign_totals() {
        let live = LiveStats::start();
        live.add_queries(10);
        live.add_queries(5);
        live.add_plans(34);
        live.add_raw_reports(6);
        live.add_new_class();
        live.add_new_class();
        live.cell_drained();
        live.set_diversity(17);
        let s = live.snapshot(8, 5, 4, 1);
        assert_eq!(s.queries, 15);
        assert_eq!(s.plans, 34);
        assert_eq!(s.raw_reports, 6);
        assert_eq!(s.new_classes, 2);
        assert_eq!(s.cells_drained, 1);
        assert_eq!(s.cells_done, 5);
        assert_eq!(s.cells_total, 8);
        assert_eq!(s.bug_classes, 4);
        assert_eq!(s.diversity, 17);
        assert_eq!(s.torn_tails_repaired, 1);
        assert!((s.dedup_ratio() - 3.0).abs() < 1e-9);
        assert!(s.queries_per_sec() > 0.0);
    }

    #[test]
    fn supervision_counters_flow_into_the_snapshot() {
        let live = LiveStats::start();
        live.add_panic_caught();
        live.add_panic_caught();
        live.add_retry();
        live.add_retry();
        live.add_retry();
        live.add_quarantined();
        live.add_deadline_cell();
        let s = live.snapshot(4, 4, 0, 0);
        assert_eq!(s.panics_caught, 2);
        assert_eq!(s.retries, 3);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.deadline_cells, 1);
        let parsed = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("panics_caught").unwrap().as_usize(), Some(2));
        assert_eq!(parsed.get("quarantined").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn json_snapshot_has_the_bench_fields() {
        let live = LiveStats::start();
        live.add_queries(4);
        live.set_diversity(3);
        let j = live.snapshot(2, 2, 1, 0).to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        for key in [
            "elapsed_sec",
            "prior_elapsed_sec",
            "total_elapsed_sec",
            "queries",
            "total_queries",
            "queries_per_sec",
            "plans",
            "total_plans",
            "plans_per_sec",
            "raw_reports",
            "bug_classes",
            "dedup_ratio",
            "cells_total",
            "diversity",
            "torn_tails_repaired",
            "panics_caught",
            "retries",
            "quarantined",
            "deadline_cells",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        assert_eq!(parsed.get("queries").unwrap().as_usize(), Some(4));
    }

    #[test]
    fn dedup_ratio_is_zero_without_classes() {
        let live = LiveStats::start();
        live.add_raw_reports(3);
        assert_eq!(live.snapshot(1, 0, 0, 0).dedup_ratio(), 0.0);
    }

    #[test]
    fn rates_are_cumulative_across_prior_runs() {
        // A resumed campaign's rates must blend the previous runs' totals
        // with this run's counters instead of restarting the clock.
        let prior = RunTotals {
            elapsed: Duration::from_secs(10),
            queries: 1_000,
            statements: 3_000,
            plans: 5_000,
        };
        let live = LiveStats::start_with_prior(prior);
        live.add_queries(50);
        live.add_statements(150);
        live.add_plans(250);
        let s = live.snapshot(4, 4, 0, 0);
        assert_eq!(s.prior, prior);
        assert_eq!(s.total_queries(), 1_050);
        assert_eq!(s.total_statements(), 3_150);
        assert_eq!(s.total_plans(), 5_250);
        // The live run just started, so elapsed is ~0; cumulative rates are
        // dominated by the 10 prior seconds and cannot spike toward the
        // fresh-clock value of 50 / ~0s.
        assert!(s.total_elapsed() >= prior.elapsed);
        assert!(s.queries_per_sec() <= 1_050.0 / 10.0 + 1.0);
        assert!(s.queries_per_sec() > 0.0);
        let parsed = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("total_queries").unwrap().as_usize(), Some(1_050));
        assert_eq!(parsed.get("queries").unwrap().as_usize(), Some(50));
    }

    #[test]
    fn reverify_stats_serialize_the_verdict_counts() {
        let stats = ReverifyStats {
            elapsed: Duration::from_millis(500),
            entries: 6,
            builds: 2,
            verdicts: 12,
            still_failing: 6,
            fixed: 5,
            flaky: 0,
            stale: 1,
        };
        assert!(stats.checks_per_sec() > 0.0);
        let parsed = Json::parse(&stats.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("verdicts").unwrap().as_usize(), Some(12));
        assert_eq!(parsed.get("still_failing").unwrap().as_usize(), Some(6));
        assert_eq!(parsed.get("stale").unwrap().as_usize(), Some(1));
    }
}
