//! The campaign checkpoint journal.
//!
//! `checkpoint.jsonl` is an append-only journal in the campaign directory:
//! the first line records the campaign's identity (seed, shard count, cell
//! grid, per-cell budget), then one line per *completed* cell, plus one
//! [`RunRecord`] line per finished run carrying the run's wall-clock and
//! throughput totals. Resuming a killed campaign replays the journal to
//! learn which cells are already drained — cells are deterministic given
//! the campaign seed, so re-running only the missing ones reproduces
//! exactly the bug-class set an uninterrupted run would have produced —
//! and sums the run records so cumulative rates survive the restart
//! instead of resetting (and spiking) with each resume.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The identity of a campaign, pinned in the journal header. Resume refuses
/// a directory whose header disagrees with the live configuration — mixing
/// cell grids would silently skip work or re-run drained cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    pub seed: u64,
    /// Digest of the testing-database recipe (`DsgConfig`) — the shard data
    /// a resume rebuilds must come from the same recipe the campaign
    /// started with.
    pub dsg_digest: u64,
    pub shards: usize,
    pub cells: usize,
    pub queries_per_cell: usize,
    pub profiles: Vec<String>,
    pub oracles: Vec<String>,
    /// Executor labels ([`EngineKind::label`](crate::campaign::EngineKind)).
    /// Headers journaled before the engine axis existed omit the field and
    /// load as `["row"]` — the only engine those campaigns could run.
    pub engines: Vec<String>,
    /// Plan-mode labels ([`PlanMode::label`](crate::campaign::PlanMode)).
    /// Headers journaled before the plan-space axis existed omit the field
    /// and load as `["single"]` — those campaigns ran one plan per hint set.
    pub plan_modes: Vec<String>,
    /// Workload labels ([`Workload::label`](crate::campaign::Workload)).
    /// Headers journaled before the workload axis existed omit the field and
    /// load as `["select"]` — those campaigns hunted SELECT statements only.
    pub workloads: Vec<String>,
}

impl CheckpointHeader {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "campaign".to_string(),
                Json::str(format!("{:016x}", self.seed)),
            ),
            (
                "dsg".to_string(),
                Json::str(format!("{:016x}", self.dsg_digest)),
            ),
            ("shards".to_string(), Json::count(self.shards)),
            ("cells".to_string(), Json::count(self.cells)),
            (
                "queries_per_cell".to_string(),
                Json::count(self.queries_per_cell),
            ),
            (
                "profiles".to_string(),
                Json::Arr(self.profiles.iter().map(Json::str).collect()),
            ),
            (
                "oracles".to_string(),
                Json::Arr(self.oracles.iter().map(Json::str).collect()),
            ),
            (
                "engines".to_string(),
                Json::Arr(self.engines.iter().map(Json::str).collect()),
            ),
            (
                "plan_modes".to_string(),
                Json::Arr(self.plan_modes.iter().map(Json::str).collect()),
            ),
            (
                "workloads".to_string(),
                Json::Arr(self.workloads.iter().map(Json::str).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<CheckpointHeader, String> {
        let count = |k: &str| {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("header missing `{k}`"))
        };
        let list = |k: &str| -> Result<Vec<String>, String> {
            j.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("header missing `{k}`"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(String::from)
                        .ok_or_else(|| format!("`{k}` entries must be strings"))
                })
                .collect()
        };
        let hex_field = |k: &str| -> Result<u64, String> {
            let hex = j
                .get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("header missing `{k}`"))?;
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad `{k}` value `{hex}`"))
        };
        Ok(CheckpointHeader {
            seed: hex_field("campaign")?,
            dsg_digest: hex_field("dsg")?,
            shards: count("shards")?,
            cells: count("cells")?,
            queries_per_cell: count("queries_per_cell")?,
            profiles: list("profiles")?,
            oracles: list("oracles")?,
            engines: if j.get("engines").is_some() {
                list("engines")?
            } else {
                vec!["row".to_string()]
            },
            plan_modes: if j.get("plan_modes").is_some() {
                list("plan_modes")?
            } else {
                vec!["single".to_string()]
            },
            workloads: if j.get("workloads").is_some() {
                list("workloads")?
            } else {
                vec!["select".to_string()]
            },
        })
    }
}

/// One completed cell, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    pub cell_id: usize,
    /// Statements the oracle actually exercised in this cell.
    pub queries: usize,
    /// Raw (pre-dedup) bug reports the cell produced.
    pub raw_reports: usize,
    /// Bug classes this cell was first to discover.
    pub new_classes: usize,
    pub elapsed_ms: u64,
    /// The cell hit its wall-clock deadline and was checkpointed as
    /// complete-with-timeout (it ran fewer statements than configured).
    /// Emitted only when true, so legacy journals parse unchanged.
    pub timeout: bool,
}

impl CellRecord {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("cell".to_string(), Json::count(self.cell_id)),
            ("queries".to_string(), Json::count(self.queries)),
            ("raw".to_string(), Json::count(self.raw_reports)),
            ("new_classes".to_string(), Json::count(self.new_classes)),
            (
                "elapsed_ms".to_string(),
                Json::count(self.elapsed_ms as usize),
            ),
        ];
        if self.timeout {
            members.push(("timeout".to_string(), Json::Bool(true)));
        }
        Json::Obj(members)
    }

    fn from_json(j: &Json) -> Result<CellRecord, String> {
        let count = |k: &str| {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("cell record missing `{k}`"))
        };
        Ok(CellRecord {
            cell_id: count("cell")?,
            queries: count("queries")?,
            raw_reports: count("raw")?,
            new_classes: count("new_classes")?,
            elapsed_ms: count("elapsed_ms")? as u64,
            timeout: j.get("timeout").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// One finished run, as journaled: the wall-clock and throughput totals of
/// a `Campaign::run` that reached its end. Resume sums these so cumulative
/// rates (`queries_per_sec`, `plans_per_sec`) carry across kill/resume.
/// Journals written before run records existed simply have none — their
/// campaigns resume with zero prior totals, exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunRecord {
    pub elapsed_ms: u64,
    /// Oracle-exercised statements in the run.
    pub queries: usize,
    /// Engine-level statements executed in the run.
    pub statements: usize,
    /// Optimizer-enumerated plans executed in the run.
    pub plans: usize,
}

impl RunRecord {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            (
                "run_elapsed_ms".to_string(),
                Json::count(self.elapsed_ms as usize),
            ),
            ("queries".to_string(), Json::count(self.queries)),
            ("statements".to_string(), Json::count(self.statements)),
            ("plans".to_string(), Json::count(self.plans)),
        ])
    }

    fn from_json(j: &Json) -> Result<RunRecord, String> {
        let count = |k: &str| {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("run record missing `{k}`"))
        };
        Ok(RunRecord {
            elapsed_ms: count("run_elapsed_ms")? as u64,
            queries: count("queries")?,
            statements: count("statements")?,
            plans: count("plans")?,
        })
    }
}

/// Dispatch target for journal body lines.
enum Record {
    Cell(CellRecord),
    Run(RunRecord),
}

/// Everything a journal replay yields: the identity header, the completed
/// cells, and the finished-run totals.
#[derive(Debug, Clone)]
pub struct CheckpointLoad {
    pub header: CheckpointHeader,
    pub cells: Vec<CellRecord>,
    pub runs: Vec<RunRecord>,
}

/// Handle on one campaign's checkpoint journal.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    path: PathBuf,
}

impl Checkpoint {
    pub const FILE_NAME: &'static str = "checkpoint.jsonl";

    pub fn in_dir(dir: &Path) -> Checkpoint {
        Checkpoint {
            path: dir.join(Self::FILE_NAME),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Start a fresh journal (truncates), writing the header line.
    pub fn create(&self, header: &CheckpointHeader) -> io::Result<()> {
        let mut f = std::fs::File::create(&self.path)?;
        let mut line = header.to_json().to_string();
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.flush()
    }

    /// Journal one completed cell with the default durability settings
    /// (callers serialize through the campaign's io lock).
    pub fn append_cell(&self, record: &CellRecord) -> io::Result<()> {
        self.append_cell_with(record, &crate::supervisor::AppendOptions::default())
    }

    /// Journal one completed cell through explicit durability options
    /// (atomic-or-absent, fsync commit point, chaos fault policy).
    pub fn append_cell_with(
        &self,
        record: &CellRecord,
        opts: &crate::supervisor::AppendOptions,
    ) -> io::Result<()> {
        tqs_telemetry::counter!("campaign.checkpoint.cell_appends").incr();
        self.append_line(record.to_json(), opts)
    }

    /// Journal one finished run's totals so resumed campaigns report
    /// cumulative throughput instead of restarting their clocks.
    pub fn append_run(&self, record: &RunRecord) -> io::Result<()> {
        self.append_run_with(record, &crate::supervisor::AppendOptions::default())
    }

    /// [`Checkpoint::append_run`] through explicit durability options.
    pub fn append_run_with(
        &self,
        record: &RunRecord,
        opts: &crate::supervisor::AppendOptions,
    ) -> io::Result<()> {
        tqs_telemetry::counter!("campaign.checkpoint.run_appends").incr();
        self.append_line(record.to_json(), opts)
    }

    fn append_line(&self, json: Json, opts: &crate::supervisor::AppendOptions) -> io::Result<()> {
        let mut line = json.to_string();
        line.push('\n');
        crate::supervisor::append_line_durable(&self.path, line.as_bytes(), opts)
    }

    /// Truncate a torn final line left by a kill mid-append so later
    /// appends start on a fresh line (see
    /// [`Corpus::repair_torn_tail`](crate::corpus::Corpus::repair_torn_tail)).
    pub fn repair_torn_tail(&self) -> io::Result<bool> {
        crate::corpus::repair_torn_tail(&self.path)
    }

    /// Replay the journal: the header, every completed cell, and every
    /// finished run. A torn final line (kill mid-append) is dropped;
    /// corruption elsewhere errors.
    pub fn load(&self) -> io::Result<CheckpointLoad> {
        let mut text = String::new();
        std::fs::File::open(&self.path)?.read_to_string(&mut text)?;
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: empty checkpoint", self.path.display()),
            ));
        }
        let bad = |i: usize, msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: line {}: {msg}", self.path.display(), i + 1),
            )
        };
        let header = Json::parse(lines[0])
            .map_err(|e| e.to_string())
            .and_then(|j| CheckpointHeader::from_json(&j))
            .map_err(|m| bad(0, m))?;
        let mut cells = Vec::new();
        let mut runs = Vec::new();
        for (i, line) in lines.iter().enumerate().skip(1) {
            // Dispatch on the record's distinguishing key: cell records
            // carry `cell`, run records carry `run_elapsed_ms`.
            let parsed = Json::parse(line).map_err(|e| e.to_string()).and_then(|j| {
                if j.get("cell").is_some() {
                    CellRecord::from_json(&j).map(Record::Cell)
                } else if j.get("run_elapsed_ms").is_some() {
                    RunRecord::from_json(&j).map(Record::Run)
                } else {
                    Err("unrecognized journal record".to_string())
                }
            });
            match parsed {
                Ok(Record::Cell(r)) => cells.push(r),
                Ok(Record::Run(r)) => runs.push(r),
                Err(_) if i + 1 == lines.len() && !text.ends_with('\n') => {
                    tqs_telemetry::counter!("campaign.checkpoint.torn_lines_dropped").incr();
                    tqs_telemetry::event_with("campaign", || {
                        (
                            "checkpoint.torn_line_dropped".to_string(),
                            vec![(
                                "path".to_string(),
                                Json::str(self.path.display().to_string()),
                            )],
                        )
                    });
                    break;
                }
                Err(m) => return Err(bad(i, m)),
            }
        }
        Ok(CheckpointLoad {
            header,
            cells,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            seed: 0xDEAD_BEEF,
            dsg_digest: 0xD16E_5700,
            shards: 4,
            cells: 8,
            queries_per_cell: 100,
            profiles: vec!["MySQL-like".into(), "TiDB-like".into()],
            oracles: vec!["ground-truth".into()],
            engines: vec!["row".into(), "disk".into()],
            plan_modes: vec!["single".into(), "space".into()],
            workloads: vec!["select".into(), "dml".into()],
        }
    }

    #[test]
    fn journal_round_trips_header_and_cells() {
        let dir = std::env::temp_dir().join(format!("tqs-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = Checkpoint::in_dir(&dir);
        ckpt.create(&header()).unwrap();
        for id in [2usize, 5] {
            ckpt.append_cell(&CellRecord {
                cell_id: id,
                queries: 90,
                raw_reports: 14,
                new_classes: 3,
                elapsed_ms: 120,
                timeout: false,
            })
            .unwrap();
        }
        ckpt.append_run(&RunRecord {
            elapsed_ms: 2_500,
            queries: 180,
            statements: 540,
            plans: 900,
        })
        .unwrap();
        let loaded = ckpt.load().unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.cells.len(), 2);
        assert_eq!(loaded.cells[1].cell_id, 5);
        assert_eq!(loaded.runs.len(), 1);
        assert_eq!(loaded.runs[0].queries, 180);
        assert_eq!(loaded.runs[0].elapsed_ms, 2_500);
        // torn tail is dropped
        {
            let mut f = OpenOptions::new().append(true).open(ckpt.path()).unwrap();
            f.write_all(b"{\"cell\": 6, \"quer").unwrap();
        }
        let loaded = ckpt.load().unwrap();
        assert_eq!(loaded.cells.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_run_record_journals_load_with_zero_runs() {
        // Journals written before run records existed have only the header
        // and cell lines; they must load with an empty run list.
        let dir = std::env::temp_dir().join(format!("tqs-ckpt-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = Checkpoint::in_dir(&dir);
        ckpt.create(&header()).unwrap();
        ckpt.append_cell(&CellRecord {
            cell_id: 0,
            queries: 10,
            raw_reports: 0,
            new_classes: 0,
            elapsed_ms: 5,
            timeout: false,
        })
        .unwrap();
        let loaded = ckpt.load().unwrap();
        assert_eq!(loaded.cells.len(), 1);
        assert!(loaded.runs.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_engine_axis_headers_load_as_row_only() {
        // A header journaled before the engine axis existed has no
        // `engines` member; it must load as the row-only campaign it was.
        let mut legacy = header().to_json();
        if let Json::Obj(members) = &mut legacy {
            members.retain(|(k, _)| k != "engines");
        }
        let parsed = CheckpointHeader::from_json(&legacy).unwrap();
        assert_eq!(parsed.engines, vec!["row".to_string()]);
    }

    #[test]
    fn pre_plan_axis_headers_load_as_single_plan() {
        // A header journaled before the plan-space axis existed has no
        // `plan_modes` member; it must load as the single-plan campaign it
        // was.
        let mut legacy = header().to_json();
        if let Json::Obj(members) = &mut legacy {
            members.retain(|(k, _)| k != "plan_modes");
        }
        let parsed = CheckpointHeader::from_json(&legacy).unwrap();
        assert_eq!(parsed.plan_modes, vec!["single".to_string()]);
    }

    #[test]
    fn pre_workload_axis_headers_load_as_select_only() {
        // A header journaled before the workload axis existed has no
        // `workloads` member; it must load as the SELECT-only campaign it
        // was.
        let mut legacy = header().to_json();
        if let Json::Obj(members) = &mut legacy {
            members.retain(|(k, _)| k != "workloads");
        }
        let parsed = CheckpointHeader::from_json(&legacy).unwrap();
        assert_eq!(parsed.workloads, vec!["select".to_string()]);
    }
}
