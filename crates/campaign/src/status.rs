//! Live campaign status: a shared progress board and a tiny HTTP endpoint.
//!
//! [`StatusBoard`] is the bridge between a running [`Campaign`] and anything
//! that wants to watch it: `Campaign::run` publishes its live counters at
//! the start of each run and the final [`CampaignStats`] at the end, and the
//! board mints consistent snapshots on demand without touching the
//! campaign's locks.
//!
//! [`CampaignStatusServer`] serves the board over plain HTTP/1.1 on
//! `std::net` — no framework, `curl`-able while a hunt is running:
//!
//! - `GET /status` — one [`CampaignStats`] snapshot as JSON.
//! - `GET /metrics` — the process-wide telemetry metrics snapshot.
//! - `GET /stream?interval_ms=N` — JSONL: one snapshot line every `N` ms
//!   (default 200) until the run finishes, whose final stats are the last
//!   line. Pipe through `jq` for a live dashboard.
//!
//! [`Campaign`]: crate::campaign::Campaign

use crate::json::Json;
use crate::stats::{CampaignStats, LiveStats};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the board knows between `begin_run` and `finish`.
#[derive(Default)]
struct BoardInner {
    /// The running campaign's live counters (None outside a run).
    live: Option<Arc<LiveStats>>,
    cells_total: usize,
    /// Cells already done when the run started (resumed state).
    cells_done_base: usize,
    /// Bug classes already known when the run started (resumed state).
    classes_base: usize,
    torn_tails_repaired: usize,
    /// The last finished run's final stats.
    last: Option<CampaignStats>,
    finished: bool,
    /// A graceful stop has been requested (the fleet is draining).
    stopping: bool,
    /// The run ended after a stop request (vs running to completion).
    stopped: bool,
}

/// Shared progress board: the campaign publishes, status readers snapshot.
/// Cheap to clone around via `Arc` (see `Campaign::status_board`).
#[derive(Default)]
pub struct StatusBoard {
    inner: Mutex<BoardInner>,
}

impl StatusBoard {
    pub fn new() -> StatusBoard {
        StatusBoard::default()
    }

    /// Called by `Campaign::run` as the fleet starts: hand over the run's
    /// live counters plus the resumed state the counters don't include.
    pub fn begin_run(
        &self,
        live: Arc<LiveStats>,
        cells_total: usize,
        cells_done: usize,
        bug_classes: usize,
        torn_tails_repaired: usize,
    ) {
        let mut inner = self.inner.lock();
        *inner = BoardInner {
            live: Some(live),
            cells_total,
            cells_done_base: cells_done,
            classes_base: bug_classes,
            torn_tails_repaired,
            last: None,
            finished: false,
            stopping: false,
            stopped: false,
        };
    }

    /// Called by `Campaign::run` with the run's final stats.
    pub fn finish(&self, stats: CampaignStats) {
        let mut inner = self.inner.lock();
        inner.live = None;
        inner.last = Some(stats);
        inner.finished = true;
        inner.stopped = inner.stopping;
    }

    /// A graceful stop was requested: workers finish their current cell and
    /// drain. Surfaced as `"stopping"` (then `"stopped"`) in the status JSON.
    pub fn request_stop(&self) {
        self.inner.lock().stopping = true;
    }

    /// Called when the run dies on an I/O error: streams end rather than
    /// hang waiting for a final snapshot that will never come.
    pub fn abort(&self) {
        let mut inner = self.inner.lock();
        inner.live = None;
        inner.finished = true;
    }

    /// The run has ended (normally or not); streams drain and close.
    pub fn is_finished(&self) -> bool {
        self.inner.lock().finished
    }

    /// A consistent-enough snapshot of the run in flight: live counters
    /// plus the resumed bases. `None` before the first `begin_run`.
    pub fn snapshot(&self) -> Option<CampaignStats> {
        let inner = self.inner.lock();
        match &inner.live {
            Some(live) => Some(live.snapshot(
                inner.cells_total,
                inner.cells_done_base + live.cells_drained(),
                inner.classes_base + live.new_classes_found(),
                inner.torn_tails_repaired,
            )),
            None => inner.last.clone(),
        }
    }
}

/// The streamed/queried JSON for one snapshot, with run-state attached so
/// stream consumers know when the line they hold is the final one.
fn status_json(board: &StatusBoard) -> Json {
    match board.snapshot() {
        Some(stats) => {
            let (finished, stopping, stopped) = {
                let inner = board.inner.lock();
                (inner.finished, inner.stopping, inner.stopped)
            };
            let state = match (finished, stopping, stopped) {
                (true, _, true) => "stopped",
                (true, _, false) => "finished",
                (false, true, _) => "stopping",
                (false, false, _) => "running",
            };
            let mut members = vec![("state".to_string(), Json::str(state))];
            if let Json::Obj(stat_members) = stats.to_json() {
                members.extend(stat_members);
            }
            Json::Obj(members)
        }
        None => Json::Obj(vec![("state".to_string(), Json::str("idle"))]),
    }
}

/// A live status endpoint on a plain `TcpListener`. One serving thread,
/// connections handled serially — it is an operator peephole, not a web
/// server. Stops (and joins) on [`stop`](Self::stop) or drop.
pub struct CampaignStatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CampaignStatusServer {
    /// Bind `addr` (use `127.0.0.1:0` to let the OS pick a port) and serve
    /// `board` until stopped.
    pub fn start(board: Arc<StatusBoard>, addr: &str) -> io::Result<CampaignStatusServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tqs-status".to_string())
            .spawn(move || serve(listener, board, thread_stop))?;
        Ok(CampaignStatusServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — the port to `curl` when started with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the serving thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CampaignStatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, board: Arc<StatusBoard>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A broken client connection is the client's problem.
                let _ = handle_client(stream, &board, &stop);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn handle_client(stream: TcpStream, board: &StatusBoard, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // A stalled or vanished client must not wedge the (serial) serving
    // thread: bound every write too.
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block; nothing in it matters to us.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (route, query) = path.split_once('?').unwrap_or((path, ""));
    match route {
        "/status" => respond(&mut stream, "200 OK", &status_json(board).to_string()),
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            &tqs_telemetry::snapshot_metrics().to_json().to_string(),
        ),
        "/stream" => {
            let interval = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("interval_ms="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(200)
                .max(1);
            stream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
                  Connection: close\r\n\r\n",
            )?;
            loop {
                let mut line = status_json(board).to_string();
                line.push('\n');
                // A client that disconnected mid-stream is a normal way for
                // a stream to end, not a serving error: swallow it so the
                // next connection is accepted immediately.
                if stream.write_all(line.as_bytes()).is_err() || stream.flush().is_err() {
                    tqs_telemetry::counter!("campaign.status.stream_disconnects").incr();
                    return Ok(());
                }
                if board.is_finished() || stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                // Sleep in small slices so server stop isn't held hostage by
                // a long client-chosen interval.
                let mut remaining = interval;
                while remaining > 0 && !stop.load(Ordering::Relaxed) {
                    let slice = remaining.min(20);
                    std::thread::sleep(Duration::from_millis(slice));
                    remaining -= slice;
                }
            }
        }
        _ => respond(&mut stream, "404 Not Found", "{\"error\": \"not found\"}"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunTotals;
    use std::io::Read;

    #[test]
    fn board_blends_live_counters_with_resumed_bases() {
        let board = StatusBoard::new();
        assert!(board.snapshot().is_none());
        let live = Arc::new(LiveStats::start_with_prior(RunTotals::default()));
        board.begin_run(Arc::clone(&live), 10, 4, 2, 1);
        live.add_queries(7);
        live.add_new_class();
        live.cell_drained();
        let s = board.snapshot().unwrap();
        assert_eq!(s.queries, 7);
        assert_eq!(s.cells_done, 5, "resumed base + drained this run");
        assert_eq!(s.bug_classes, 3, "resumed base + new this run");
        assert_eq!(s.torn_tails_repaired, 1);
        assert!(!board.is_finished());
        board.finish(s.clone());
        assert!(board.is_finished());
        assert_eq!(board.snapshot().unwrap().queries, 7);
    }

    #[test]
    fn endpoint_serves_status_metrics_and_404() {
        let board = Arc::new(StatusBoard::new());
        let server = CampaignStatusServer::start(Arc::clone(&board), "127.0.0.1:0").unwrap();
        let get = |path: &str| -> String {
            let mut conn = TcpStream::connect(server.local_addr()).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };
        let idle = get("/status");
        assert!(idle.starts_with("HTTP/1.1 200 OK"));
        let body = idle.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            Json::parse(body).unwrap().get("state").unwrap().as_str(),
            Some("idle")
        );
        let metrics = get("/metrics");
        let body = metrics.split("\r\n\r\n").nth(1).unwrap();
        assert!(Json::parse(body).unwrap().get("counters").is_some());
        assert!(get("/nonsense").starts_with("HTTP/1.1 404"));
        server.stop();
    }
}
