//! Corpus re-verification: regression campaigns that replay every persisted
//! bug class against chosen engine builds.
//!
//! A hunt campaign's corpus is a *regression* asset as much as a discovery
//! log: every deduplicated class carries the statement that exposed it and a
//! replayable witness trace. [`ReverifyCampaign`] turns that asset into an
//! automatic check on engine changes. For every corpus class and every
//! configured [`BuildSpec`] it runs two legs:
//!
//! 1. **Replay leg** — the persisted witness trace is served back through a
//!    [`ReplayConnector`] and the cell's original oracle re-checks the
//!    originating statement against it. This asks: *does the recorded
//!    evidence still demonstrate the recorded divergence* under today's
//!    harness (schema rebuild, hint generation, ground truth)?
//! 2. **Live leg** — the statement is re-executed end to end on a freshly
//!    connected engine build (the faulty build that produced the corpus, a
//!    fault-free build standing in for "every bug fixed", or anything in
//!    between). This asks: *does the bug still fire on this build?*
//!
//! The two legs classify each (class, build) pair:
//!
//! * [`ReverifyStatus::StillFailing`] — witness reproduces **and** the live
//!   build still trips the same root cause. The regression is still open.
//! * [`ReverifyStatus::Fixed`] — witness reproduces, live build passes. The
//!   bug this class tracked no longer occurs on this build.
//! * [`ReverifyStatus::Flaky`] — replay and live disagree about the class
//!   itself: the witness no longer reproduces the recorded divergence (with
//!   the live build firing or not). Deterministic engines should never
//!   produce this; it flags harness or corpus drift and fails CI.
//! * [`ReverifyStatus::Stale`] — the entry can no longer be checked at all:
//!   the SQL does not parse, the rebuilt shard schema lost a referenced
//!   table, or the trace no longer serves the witness statement.
//!
//! Verdicts aggregate into a machine-readable [`ReverifyReport`] (hand-rolled
//! [`crate::json`], like every campaign artifact), which also drives corpus
//! compaction: [`ReverifyReport::retain_class`] keeps classes that still fail
//! (or are flaky — contested evidence is not discharged) and garbage-collects
//! `Fixed`/`Stale` classes unless the caller opts into keeping them
//! ([`Corpus::compact`](crate::corpus::Corpus::compact)).
//!
//! Like a hunt, re-verification shards across a worker fleet: (entry × build)
//! pairs are dealt onto the campaign scheduler's work-stealing queues and the
//! report is assembled in deterministic (entry, build) order regardless of
//! which worker drained which pair.

use crate::campaign::{Campaign, CampaignCell, CampaignConfig, EngineKind};
use crate::corpus::CorpusEntry;
use crate::json::Json;
use crate::scheduler::WorkQueues;
use crate::stats::ReverifyStats;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io;
use std::sync::Arc;
use std::time::Instant;
use tqs_core::backend::EngineConnector;
use tqs_core::bugs::{BugReport, OracleKind};
use tqs_core::dsg::DsgDatabase;
use tqs_core::mutation::DmlOracle;
use tqs_engine::ProfileId;
use tqs_sql::parser::{parse_program, parse_stmt};
use tqs_sql::render::render_dml;

/// Which engine build a class is re-executed against. Builds apply to the
/// *entry's own profile* (the cell that discovered it), so one re-verification
/// covers a mixed-profile corpus uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSpec {
    /// The seeded-fault build that produced the corpus — the "nothing was
    /// fixed yet" baseline; every sound class re-verifies `StillFailing`.
    Faulty,
    /// The fault-free build of the same profile — models "every root cause
    /// fixed"; every sound class re-verifies `Fixed`.
    Pristine,
}

impl BuildSpec {
    pub const ALL: [BuildSpec; 2] = [BuildSpec::Faulty, BuildSpec::Pristine];

    pub fn label(self) -> &'static str {
        match self {
            BuildSpec::Faulty => "faulty",
            BuildSpec::Pristine => "pristine",
        }
    }

    pub fn from_label(label: &str) -> Result<BuildSpec, String> {
        Self::ALL
            .into_iter()
            .find(|b| b.label() == label)
            .ok_or_else(|| format!("unknown build spec `{label}`"))
    }

    /// A live connector for this build of `profile` on `engine` (the
    /// discovering cell's executor — a disk-found class re-executes on the
    /// disk engine), catalog loaded.
    fn connect(
        self,
        engine: EngineKind,
        profile: ProfileId,
        shard: &Arc<DsgDatabase>,
    ) -> EngineConnector {
        match self {
            BuildSpec::Faulty => engine.connect_faulty(profile, shard),
            BuildSpec::Pristine => engine.connect_pristine(profile, shard),
        }
    }
}

/// Verdict for one (class, build) pair. Declared in ascending severity so
/// [`ReverifyReport::class_status`] can aggregate across builds with `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReverifyStatus {
    /// The entry can no longer be checked (schema/SQL/trace no longer loads).
    Stale,
    /// The witness reproduces but the live build no longer fails.
    Fixed,
    /// Replay and live disagree: the witness no longer demonstrates the
    /// recorded class. Should never happen on deterministic engines.
    Flaky,
    /// The witness reproduces and the live build still fails.
    StillFailing,
}

impl ReverifyStatus {
    pub const ALL: [ReverifyStatus; 4] = [
        ReverifyStatus::Stale,
        ReverifyStatus::Fixed,
        ReverifyStatus::Flaky,
        ReverifyStatus::StillFailing,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ReverifyStatus::Stale => "stale",
            ReverifyStatus::Fixed => "fixed",
            ReverifyStatus::Flaky => "flaky",
            ReverifyStatus::StillFailing => "still-failing",
        }
    }

    pub fn from_label(label: &str) -> Result<ReverifyStatus, String> {
        Self::ALL
            .into_iter()
            .find(|s| s.label() == label)
            .ok_or_else(|| format!("unknown reverify status `{label}`"))
    }
}

/// One (class, build) verdict of a re-verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassVerdict {
    /// The corpus class ([`CorpusEntry::class_key`]).
    pub class_key: String,
    /// The campaign cell that discovered the class (fixes shard + oracle).
    pub cell_id: usize,
    /// Profile of the build under test (the discovering cell's).
    pub profile: String,
    pub build: BuildSpec,
    pub status: ReverifyStatus,
    /// Replay leg: the persisted witness still demonstrates the recorded
    /// divergence.
    pub replay_reproduced: bool,
    /// Live leg: re-execution on this build still trips the class's root
    /// cause.
    pub live_failing: bool,
    /// Human-readable reason for `Stale`/`Flaky` verdicts (empty otherwise).
    pub detail: String,
}

impl ClassVerdict {
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("class".to_string(), Json::str(&self.class_key)),
            ("cell".to_string(), Json::count(self.cell_id)),
            ("profile".to_string(), Json::str(&self.profile)),
            ("build".to_string(), Json::str(self.build.label())),
            ("status".to_string(), Json::str(self.status.label())),
            ("replay".to_string(), Json::Bool(self.replay_reproduced)),
            ("live".to_string(), Json::Bool(self.live_failing)),
        ];
        if !self.detail.is_empty() {
            members.push(("detail".to_string(), Json::str(&self.detail)));
        }
        Json::Obj(members)
    }

    pub fn from_json(j: &Json) -> Result<ClassVerdict, String> {
        let str_field = |k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("verdict missing `{k}`"))
        };
        let bool_field = |k: &str| -> Result<bool, String> {
            j.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("verdict missing `{k}`"))
        };
        Ok(ClassVerdict {
            class_key: str_field("class")?,
            cell_id: j
                .get("cell")
                .and_then(Json::as_usize)
                .ok_or("verdict missing `cell`")?,
            profile: str_field("profile")?,
            build: BuildSpec::from_label(&str_field("build")?)?,
            status: ReverifyStatus::from_label(&str_field("status")?)?,
            replay_reproduced: bool_field("replay")?,
            live_failing: bool_field("live")?,
            detail: j
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }
}

/// The machine-readable outcome of one re-verification run: every (class,
/// build) verdict, in deterministic (corpus, build) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReverifyReport {
    pub verdicts: Vec<ClassVerdict>,
}

impl ReverifyReport {
    /// How many verdicts carry `status`.
    pub fn count(&self, status: ReverifyStatus) -> usize {
        self.verdicts.iter().filter(|v| v.status == status).count()
    }

    /// How many verdicts against `build` carry `status`.
    pub fn count_on(&self, build: BuildSpec, status: ReverifyStatus) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.build == build && v.status == status)
            .count()
    }

    /// The distinct class keys the report covers.
    pub fn classes(&self) -> BTreeSet<String> {
        self.verdicts.iter().map(|v| v.class_key.clone()).collect()
    }

    /// A class's status aggregated across every build it was checked on:
    /// the most severe verdict (`StillFailing > Flaky > Fixed > Stale`), so
    /// a class fixed on one build but failing on another stays open.
    pub fn class_status(&self, class_key: &str) -> Option<ReverifyStatus> {
        self.verdicts
            .iter()
            .filter(|v| v.class_key == class_key)
            .map(|v| v.status)
            .max()
    }

    /// Should compaction keep `class_key`? `StillFailing` and `Flaky`
    /// classes always survive (contested evidence is not discharged);
    /// `Fixed`/`Stale` classes survive only with `keep_fixed`. Classes the
    /// report never checked are kept — re-verification must not
    /// garbage-collect what it did not verify.
    pub fn retain_class(&self, class_key: &str, keep_fixed: bool) -> bool {
        match self.class_status(class_key) {
            Some(ReverifyStatus::StillFailing) | Some(ReverifyStatus::Flaky) | None => true,
            Some(ReverifyStatus::Fixed) | Some(ReverifyStatus::Stale) => keep_fixed,
        }
    }

    /// The class keys [`retain_class`](Self::retain_class) keeps.
    pub fn surviving_classes(&self, keep_fixed: bool) -> BTreeSet<String> {
        self.classes()
            .into_iter()
            .filter(|k| self.retain_class(k, keep_fixed))
            .collect()
    }

    pub fn to_json(&self) -> Json {
        let mut members = vec![("classes".to_string(), Json::count(self.classes().len()))];
        for status in ReverifyStatus::ALL {
            members.push((
                status.label().replace('-', "_"),
                Json::count(self.count(status)),
            ));
        }
        members.push((
            "verdicts".to_string(),
            Json::Arr(self.verdicts.iter().map(ClassVerdict::to_json).collect()),
        ));
        Json::Obj(members)
    }

    pub fn from_json(j: &Json) -> Result<ReverifyReport, String> {
        let verdicts = j
            .get("verdicts")
            .and_then(Json::as_arr)
            .ok_or("report missing `verdicts`")?
            .iter()
            .map(ClassVerdict::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReverifyReport { verdicts })
    }
}

/// Configuration of one re-verification run.
#[derive(Debug, Clone)]
pub struct ReverifyConfig {
    /// The campaign whose corpus is re-verified. Its identity must match the
    /// directory's checkpoint header — re-verification rebuilds the shard
    /// databases from this recipe, and silently re-verifying against
    /// different data would be meaningless.
    pub campaign: CampaignConfig,
    /// Engine builds every class is re-executed against.
    pub builds: Vec<BuildSpec>,
    /// Worker threads draining the (entry × build) grid.
    pub workers: usize,
}

/// A loaded re-verification campaign: the resumed hunt campaign (validated
/// header, rebuilt shards, cell grid) plus its corpus entries.
pub struct ReverifyCampaign {
    cfg: ReverifyConfig,
    campaign: Campaign,
    entries: Vec<CorpusEntry>,
}

impl ReverifyCampaign {
    /// Open the campaign directory (via [`Campaign::resume`], which refuses a
    /// mismatched identity) and load its corpus.
    pub fn load(cfg: ReverifyConfig) -> io::Result<ReverifyCampaign> {
        let campaign = Campaign::resume(cfg.campaign.clone())?;
        let entries = campaign.corpus().load()?;
        Ok(ReverifyCampaign {
            cfg,
            campaign,
            entries,
        })
    }

    pub fn config(&self) -> &ReverifyConfig {
        &self.cfg
    }

    /// The underlying (resumed) hunt campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// The corpus entries under re-verification, in corpus order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Re-verify every corpus class against every configured build with the
    /// worker fleet. Verdicts are deterministic per (entry, build) — thread
    /// scheduling only changes who computes them — and the report lists them
    /// in (corpus, build) order.
    pub fn run(&self) -> (ReverifyReport, ReverifyStats) {
        let started = Instant::now();
        let units: Vec<(usize, usize)> = (0..self.entries.len())
            .flat_map(|e| (0..self.cfg.builds.len()).map(move |b| (e, b)))
            .collect();
        let queues = WorkQueues::deal(self.cfg.workers, units);
        let verdicts: Mutex<Vec<((usize, usize), ClassVerdict)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..queues.workers() {
                let queues = &queues;
                let verdicts = &verdicts;
                let this = &*self;
                scope.spawn(move || {
                    while let Some((e, b)) = queues.pop(worker) {
                        let verdict = this.verify_one(&this.entries[e], this.cfg.builds[b]);
                        verdicts.lock().push(((e, b), verdict));
                    }
                });
            }
        });
        let mut verdicts = verdicts.into_inner();
        verdicts.sort_by_key(|(unit, _)| *unit);
        let report = ReverifyReport {
            verdicts: verdicts.into_iter().map(|(_, v)| v).collect(),
        };
        let stats = ReverifyStats {
            elapsed: started.elapsed(),
            entries: self.entries.len(),
            builds: self.cfg.builds.len(),
            verdicts: report.verdicts.len(),
            still_failing: report.count(ReverifyStatus::StillFailing),
            fixed: report.count(ReverifyStatus::Fixed),
            flaky: report.count(ReverifyStatus::Flaky),
            stale: report.count(ReverifyStatus::Stale),
        };
        (report, stats)
    }

    /// Both legs for one (entry, build) pair.
    fn verify_one(&self, entry: &CorpusEntry, build: BuildSpec) -> ClassVerdict {
        let verdict =
            |profile: &str, status: ReverifyStatus, replay: bool, live: bool, detail: String| {
                ClassVerdict {
                    class_key: entry.class_key.clone(),
                    cell_id: entry.cell_id,
                    profile: profile.to_string(),
                    build,
                    status,
                    replay_reproduced: replay,
                    live_failing: live,
                    detail,
                }
            };
        let stale = |profile: &str, detail: String| {
            verdict(profile, ReverifyStatus::Stale, false, false, detail)
        };

        if entry.report.oracle == OracleKind::HarnessPanic {
            // Panic incidents record that the *harness* failed, not that an
            // engine misbehaved — there is no SQL to replay against a build.
            return stale(
                entry.connector.dialect.name(),
                "harness incident, not an engine bug".to_string(),
            );
        }
        let Some(cell) = self.campaign.cells().get(entry.cell_id).copied() else {
            return stale(
                entry.connector.dialect.name(),
                format!("cell {} is outside the campaign grid", entry.cell_id),
            );
        };
        let profile = cell.profile.name();
        let shard = &self.campaign.shards()[cell.shard];
        if entry.report.oracle == OracleKind::Mutation {
            return self.verify_dml(entry, build, cell, shard);
        }
        let stmt = match parse_stmt(&entry.report.sql) {
            Ok(stmt) => stmt,
            Err(e) => return stale(profile, format!("sql no longer parses: {e}")),
        };
        for table in stmt.from.tables() {
            if shard.db.catalog.table(&table.table).is_none() {
                return stale(
                    profile,
                    format!(
                        "table `{}` missing from the rebuilt shard schema",
                        table.table
                    ),
                );
            }
        }
        let replay = entry.replay_connector();
        if !replay.contains(&entry.report.hint_label, &entry.report.sql) {
            return stale(
                profile,
                format!(
                    "witness trace no longer serves the failing statement [{}]",
                    entry.report.hint_label
                ),
            );
        }

        // Replay leg: the recorded witness, re-judged by the cell's oracle
        // (the plan-space oracle for plan-space cells — the witness trace
        // recorded every enumerated plan's execution).
        let mut replay = replay;
        let replay_verdict = cell.build_oracle(shard).check(&stmt, &mut replay);
        if !replay_verdict.executed() {
            return stale(
                profile,
                "witness trace no longer serves the oracle's statements".to_string(),
            );
        }
        let replay_reproduced = matches_class(&entry.report, replay_verdict.into_bugs());

        // Live leg: a fresh end-to-end execution on the build under test.
        let mut conn = build.connect(cell.engine, cell.profile, shard);
        let live_verdict = cell.build_oracle(shard).check(&stmt, &mut conn);
        if !live_verdict.executed() {
            return stale(
                profile,
                format!("live re-execution on the {} build skipped", build.label()),
            );
        }
        let live_failing = matches_class(&entry.report, live_verdict.into_bugs());

        let (status, detail) = match (replay_reproduced, live_failing) {
            (true, true) => (ReverifyStatus::StillFailing, String::new()),
            (true, false) => (ReverifyStatus::Fixed, String::new()),
            (false, true) => (
                ReverifyStatus::Flaky,
                "witness replay no longer reproduces the class but live re-execution still \
                 trips it"
                    .to_string(),
            ),
            (false, false) => (
                ReverifyStatus::Flaky,
                "neither witness replay nor live re-execution reproduces the recorded class"
                    .to_string(),
            ),
        };
        verdict(profile, status, replay_reproduced, live_failing, detail)
    }

    /// Both legs for a mutation-workload class. The persisted SQL is a whole
    /// DML + transaction program; the witness trace serves every statement
    /// of it (recorded under the `dml` label) plus the oracle's per-table
    /// verification probes, so the replay leg re-judges the recorded
    /// evidence with the same delta-maintained ground truth that flagged it,
    /// and the live leg re-runs the program end to end on the build under
    /// test.
    fn verify_dml(
        &self,
        entry: &CorpusEntry,
        build: BuildSpec,
        cell: CampaignCell,
        shard: &Arc<DsgDatabase>,
    ) -> ClassVerdict {
        let profile = cell.profile.name();
        let verdict =
            |status: ReverifyStatus, replay: bool, live: bool, detail: String| ClassVerdict {
                class_key: entry.class_key.clone(),
                cell_id: entry.cell_id,
                profile: profile.to_string(),
                build,
                status,
                replay_reproduced: replay,
                live_failing: live,
                detail,
            };
        let stale = |detail: String| verdict(ReverifyStatus::Stale, false, false, detail);

        let program = match parse_program(&entry.report.sql) {
            Ok(program) => program,
            Err(e) => return stale(format!("program no longer parses: {e}")),
        };
        for stmt in &program {
            if let Some(table) = stmt.table() {
                if shard.db.catalog.table(table).is_none() {
                    return stale(format!(
                        "table `{table}` missing from the rebuilt shard schema"
                    ));
                }
            }
        }
        let replay = entry.replay_connector();
        for stmt in &program {
            let sql = render_dml(stmt);
            if !replay.contains("dml", &sql) {
                return stale(format!("witness trace no longer serves `{sql}` [dml]"));
            }
        }

        // Replay leg: the recorded program outcomes and verification probes,
        // re-judged against a freshly delta-maintained ground truth.
        let oracle = DmlOracle::new(&shard.db.catalog);
        let mut replay = replay;
        let replay_verdict = oracle.check_program(&program, &mut replay);
        if !replay_verdict.executed() {
            return stale("witness trace no longer serves the oracle's statements".to_string());
        }
        let replay_reproduced = matches_class(&entry.report, replay_verdict.into_bugs());

        // Live leg: a fresh end-to-end execution on the build under test.
        let mut conn = build.connect(cell.engine, cell.profile, shard);
        let live_verdict = oracle.check_program(&program, &mut conn);
        if !live_verdict.executed() {
            return stale(format!(
                "live re-execution on the {} build skipped",
                build.label()
            ));
        }
        let live_failing = matches_class(&entry.report, live_verdict.into_bugs());

        let (status, detail) = match (replay_reproduced, live_failing) {
            (true, true) => (ReverifyStatus::StillFailing, String::new()),
            (true, false) => (ReverifyStatus::Fixed, String::new()),
            (false, true) => (
                ReverifyStatus::Flaky,
                "witness replay no longer reproduces the class but live re-execution still \
                 trips it"
                    .to_string(),
            ),
            (false, false) => (
                ReverifyStatus::Flaky,
                "neither witness replay nor live re-execution reproduces the recorded class"
                    .to_string(),
            ),
        };
        verdict(status, replay_reproduced, live_failing, detail)
    }
}

/// Does any of `candidates` re-establish `recorded`'s class? Matching is by
/// build-independent [`BugReport::cause_key`]; candidates inherit the
/// recorded fingerprint — they re-executed the *same* statement, whose
/// canonical plan graph is by construction the recorded one — so the
/// comparison reduces to the root-cause fault set (plus hint label when no
/// fingerprint was ever stamped).
fn matches_class(recorded: &BugReport, candidates: Vec<BugReport>) -> bool {
    let want = recorded.cause_key();
    candidates.into_iter().any(|mut report| {
        report.set_fingerprint(recorded.fingerprint);
        report.cause_key() == want
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{OracleSpec, PlanMode, Workload};
    use tqs_core::dsg::{DsgConfig, WideSource};
    use tqs_schema::NoiseConfig;
    use tqs_storage::widegen::ShoppingConfig;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tqs-reverify-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: std::path::PathBuf) -> CampaignConfig {
        CampaignConfig {
            dir,
            dsg: DsgConfig {
                source: WideSource::Shopping(ShoppingConfig {
                    n_rows: 90,
                    ..Default::default()
                }),
                fd: Default::default(),
                noise: Some(NoiseConfig {
                    epsilon: 0.04,
                    seed: 5,
                    max_injections: 10,
                }),
            },
            shards: 2,
            workers: 2,
            profiles: vec![ProfileId::MysqlLike],
            oracles: vec![OracleSpec::GroundTruth],
            engines: vec![EngineKind::Row],
            plan_modes: vec![PlanMode::Single],
            workloads: vec![Workload::Select],
            queries_per_cell: 30,
            seed: 77,
            minimize: false,
            max_cells_per_run: None,
            supervisor: Default::default(),
        }
    }

    fn sample_verdict(status: ReverifyStatus, build: BuildSpec) -> ClassVerdict {
        ClassVerdict {
            class_key: "MySQL-like|SemiJoinWrongResults|plan:00000000000000a1".into(),
            cell_id: 3,
            profile: "MySQL-like".into(),
            build,
            status,
            replay_reproduced: status != ReverifyStatus::Stale,
            live_failing: status == ReverifyStatus::StillFailing,
            detail: match status {
                ReverifyStatus::Stale => "sql no longer parses: boom".into(),
                _ => String::new(),
            },
        }
    }

    #[test]
    fn verdicts_round_trip_through_json() {
        for status in ReverifyStatus::ALL {
            for build in BuildSpec::ALL {
                let v = sample_verdict(status, build);
                let back = ClassVerdict::from_json(&Json::parse(&v.to_json().to_string()).unwrap())
                    .unwrap();
                assert_eq!(back, v);
            }
        }
    }

    #[test]
    fn report_aggregates_by_severity_and_gc_spares_the_unverified() {
        let mut report = ReverifyReport::default();
        report
            .verdicts
            .push(sample_verdict(ReverifyStatus::Fixed, BuildSpec::Pristine));
        report.verdicts.push(sample_verdict(
            ReverifyStatus::StillFailing,
            BuildSpec::Faulty,
        ));
        let key = &report.verdicts[0].class_key.clone();
        // Fixed on pristine + still failing on faulty → the class stays open.
        assert_eq!(report.class_status(key), Some(ReverifyStatus::StillFailing));
        assert!(report.retain_class(key, false));
        // A class the report never saw is never garbage-collected.
        assert!(report.retain_class("never-checked", false));
        assert_eq!(report.count(ReverifyStatus::Fixed), 1);
        assert_eq!(
            report.count_on(BuildSpec::Faulty, ReverifyStatus::StillFailing),
            1
        );
        assert_eq!(report.surviving_classes(false).len(), 1);
        // Round trip the whole report.
        let back = ReverifyReport::from_json(&Json::parse(&report.to_json().to_string()).unwrap())
            .unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn status_severity_order_backs_the_aggregation() {
        assert!(ReverifyStatus::StillFailing > ReverifyStatus::Flaky);
        assert!(ReverifyStatus::Flaky > ReverifyStatus::Fixed);
        assert!(ReverifyStatus::Fixed > ReverifyStatus::Stale);
        for s in ReverifyStatus::ALL {
            assert_eq!(ReverifyStatus::from_label(s.label()), Ok(s));
        }
        for b in BuildSpec::ALL {
            assert_eq!(BuildSpec::from_label(b.label()), Ok(b));
        }
    }

    #[test]
    fn corrupted_entries_re_verify_as_stale() {
        let dir = test_dir("stale");
        let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
        campaign.run().unwrap();
        let corpus = campaign.corpus().clone();
        let mut entries = corpus.load().unwrap();
        assert!(!entries.is_empty());

        // Corrupt one entry three ways: unparseable sql, a dropped table,
        // and a witness trace that no longer covers the failing statement.
        let template = entries.remove(0);
        let mut bad_sql = template.clone();
        bad_sql.report.sql = "SELECT FROM WHERE".into();
        let mut bad_table = template.clone();
        bad_table.report.sql = "SELECT Gone.x FROM Gone".into();
        let mut bad_trace = template.clone();
        bad_trace.trace.clear();
        let mut out_of_grid = template.clone();
        out_of_grid.cell_id = 999;
        // Rewrite the corpus with only the corrupted variants.
        let text: String = [&bad_sql, &bad_table, &bad_trace, &out_of_grid]
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        std::fs::write(corpus.path(), text).unwrap();

        let reverify = ReverifyCampaign::load(ReverifyConfig {
            campaign: cfg(dir.clone()),
            builds: vec![BuildSpec::Faulty],
            workers: 2,
        })
        .unwrap();
        let (report, stats) = reverify.run();
        assert_eq!(stats.verdicts, 4);
        assert_eq!(stats.stale, 4, "{report:#?}");
        assert!(report
            .verdicts
            .iter()
            .all(|v| v.status == ReverifyStatus::Stale && !v.detail.is_empty()));
        // Stale classes are garbage-collected unless kept.
        assert!(!report.retain_class(&template.class_key, false));
        assert!(report.retain_class(&template.class_key, true));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
