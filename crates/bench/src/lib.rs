//! Shared helpers for the criterion benches and the `exp_*` experiment
//! binaries that regenerate every table and figure of the paper's evaluation
//! (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results).

use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::tqs::{TqsConfig, TqsRunner};
use tqs_engine::{DbmsProfile, ProfileId};
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

/// The standard testing database used across experiments: the shopping-order
/// wide table (the paper's running example) with 2–5% key noise.
pub fn standard_dsg(n_rows: usize, seed: u64) -> DsgConfig {
    DsgConfig {
        source: WideSource::Shopping(ShoppingConfig { n_rows, seed, ..Default::default() }),
        fd: Default::default(),
        noise: Some(NoiseConfig { epsilon: 0.04, seed: seed ^ 0xABCD, max_injections: 32 }),
    }
}

/// Build a TQS runner against the *faulty* build of `profile`.
pub fn standard_runner(profile: ProfileId, iterations: usize, seed: u64) -> TqsRunner {
    let dsg = DsgDatabase::build(&standard_dsg(250, seed));
    TqsRunner::with_database(
        profile,
        DbmsProfile::build(profile),
        dsg,
        TqsConfig { iterations, queries_per_hour: iterations.div_ceil(24).max(1), ..Default::default() },
    )
}

/// Iteration budget: `TQS_ITER` env var or the default.
pub fn budget(default: usize) -> usize {
    std::env::var("TQS_ITER").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_runner_builds_for_every_profile() {
        for p in ProfileId::ALL {
            let r = standard_runner(p, 5, 1);
            assert_eq!(r.engine.profile.info.name, p.name());
        }
        assert_eq!(budget(42), 42);
    }
}
