//! Shared helpers for the criterion benches and the `exp_*` experiment
//! binaries that regenerate every table and figure of the paper's evaluation
//! (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded results).

use std::path::PathBuf;
use tqs_campaign::{CampaignConfig, EngineKind, OracleSpec, PlanMode, SupervisorConfig, Workload};
use tqs_core::backend::EngineConnector;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_pager::EnvFaultPolicy;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

/// The hot-path workload mix shared by `exp_throughput` (raw statements/sec)
/// and `exp_obs` (telemetry overhead on the same loops): one statement per
/// hot execution path over the standard shopping schema.
pub const WORKLOADS: &[(&str, &str)] = &[
    (
        "hash_join",
        "SELECT T1.goodsId, T2.goodsName FROM T1 INNER JOIN T2 ON T1.goodsId = T2.goodsId",
    ),
    (
        "merge_join",
        "SELECT /*+ MERGE_JOIN(T2) */ T1.goodsId, T2.goodsName FROM T1 \
         INNER JOIN T2 ON T1.goodsId = T2.goodsId",
    ),
    (
        "nested_loop_join",
        "SELECT /*+ NL_JOIN(T2) */ T1.goodsId, T2.goodsName FROM T1 \
         INNER JOIN T2 ON T1.goodsId = T2.goodsId",
    ),
    (
        "three_way_join",
        "SELECT T3.price FROM T1 INNER JOIN T2 ON T1.goodsId = T2.goodsId \
         INNER JOIN T3 ON T2.goodsName = T3.goodsName",
    ),
    (
        "cross_join",
        "SELECT T2.goodsId FROM T1 CROSS JOIN T4 CROSS JOIN T2",
    ),
    (
        "group_by",
        "SELECT T2.goodsName, COUNT(*) AS cnt FROM T1 INNER JOIN T2 \
         ON T1.goodsId = T2.goodsId GROUP BY T2.goodsName",
    ),
    (
        "subquery_filter",
        "SELECT T1.orderId FROM T1 WHERE T1.goodsId IN \
         (SELECT T2.goodsId FROM T2 WHERE T2.goodsName = 'book')",
    ),
];

/// The standard testing database used across experiments: the shopping-order
/// wide table (the paper's running example) with 2–5% key noise.
pub fn standard_dsg(n_rows: usize, seed: u64) -> DsgConfig {
    DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows,
            seed,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: seed ^ 0xABCD,
            max_injections: 32,
        }),
    }
}

/// Build a TQS session against the *faulty* build of `profile`.
pub fn standard_session(profile: ProfileId, iterations: usize, seed: u64) -> TqsSession {
    TqsSession::builder()
        .connector(EngineConnector::faulty(profile))
        .dsg(DsgDatabase::build(&standard_dsg(250, seed)))
        .config(TqsConfig {
            iterations,
            queries_per_hour: iterations.div_ceil(24).max(1),
            ..Default::default()
        })
        .build()
        .expect("engine connector accepts the standard catalog")
}

/// Iteration budget: `TQS_ITER` env var or the default.
pub fn budget(default: usize) -> usize {
    std::env::var("TQS_ITER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A `usize` environment knob with a default.
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The standard hunt campaign, built from the shared `TQS_CAMPAIGN_*`
/// environment knobs:
///
/// * `TQS_CAMPAIGN_QUERIES` — query budget per cell (default 150)
/// * `TQS_CAMPAIGN_SHARDS` — wide-table shards (default 4)
/// * `TQS_CAMPAIGN_WORKERS` — worker threads (default 4)
/// * `TQS_CAMPAIGN_DIR` — campaign directory (default `target/exp_campaign`)
///
/// `exp_campaign` hunts it and `exp_reverify` re-verifies its corpus, so the
/// campaign *identity* (seed, recipe, grid, budget) lives in exactly one
/// place — a knob mismatch between the two binaries is caught by the
/// checkpoint-header check instead of silently re-verifying a different hunt.
pub fn standard_campaign_config() -> CampaignConfig {
    CampaignConfig {
        dir: std::env::var("TQS_CAMPAIGN_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/exp_campaign")),
        dsg: standard_dsg(240, 77),
        shards: env_usize("TQS_CAMPAIGN_SHARDS", 4),
        workers: env_usize("TQS_CAMPAIGN_WORKERS", 4),
        profiles: vec![ProfileId::MysqlLike, ProfileId::TidbLike],
        oracles: vec![OracleSpec::GroundTruth, OracleSpec::ThreeWay],
        engines: vec![EngineKind::Row, EngineKind::Disk],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: env_usize("TQS_CAMPAIGN_QUERIES", 150),
        seed: 0xCA3A,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

/// The plan-space hunt campaign driven by `exp_plans`: every cell runs in
/// [`PlanMode::Space`] — each generated statement is lowered through the
/// optimizer, its plan space enumerated, and every enumerated plan executed
/// against the wide-table ground truth — across all three engines on faulty
/// builds (which seed the `FaultKind::OPTIMIZER` complement into the
/// enumerator). Environment knobs:
///
/// * `TQS_PLANS_QUERIES` — query budget per cell (default 40)
/// * `TQS_PLANS_SHARDS` — wide-table shards (default 2)
/// * `TQS_PLANS_WORKERS` — worker threads (default 2)
/// * `TQS_PLANS_DIR` — campaign directory (default `target/exp_plans`)
pub fn plan_campaign_config() -> CampaignConfig {
    CampaignConfig {
        dir: std::env::var("TQS_PLANS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/exp_plans")),
        dsg: standard_dsg(200, 77),
        shards: env_usize("TQS_PLANS_SHARDS", 2),
        workers: env_usize("TQS_PLANS_WORKERS", 2),
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Columnar, EngineKind::Disk],
        plan_modes: vec![PlanMode::Space],
        workloads: vec![Workload::Select],
        queries_per_cell: env_usize("TQS_PLANS_QUERIES", 40),
        seed: 0x91A5,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

/// The supervised chaos campaign driven by `exp_chaos`: a small select+DML
/// grid with *no* injected failures. `exp_chaos` runs it once as-is for the
/// fault-free reference, then again with [`chaos_supervisor`] layered on and
/// asserts the surviving bug-class sets are identical. Environment knobs:
///
/// * `TQS_CHAOS_QUERIES` — query budget per cell (default 40)
/// * `TQS_CHAOS_WORKERS` — worker threads (default 2)
/// * `TQS_CHAOS_DIR` — campaign directory (default `target/exp_chaos`)
pub fn chaos_campaign_config() -> CampaignConfig {
    CampaignConfig {
        dir: std::env::var("TQS_CHAOS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/exp_chaos")),
        dsg: standard_dsg(160, 77),
        shards: 3,
        workers: env_usize("TQS_CHAOS_WORKERS", 2),
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Columnar],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select, Workload::Dml],
        queries_per_cell: env_usize("TQS_CHAOS_QUERIES", 40),
        seed: 0xC4A0,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

/// The chaos supervisor layered onto [`chaos_campaign_config`] for the
/// faulted leg: seeded panics in a deterministic subset of cells plus
/// environmental IO faults on every corpus/checkpoint append. Knobs:
///
/// * `TQS_CHAOS_PANIC_PCT` — percentage of cells that panic (default 40)
/// * `TQS_CHAOS_FAULT_PCT` — per-IO-op injected fault rate (default 25)
pub fn chaos_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        chaos_panic_pct: env_usize("TQS_CHAOS_PANIC_PCT", 40).min(100) as u8,
        // Over the default 12-cell grid this seed picks 4 panicking cells,
        // 2 of them persistent — both retry and quarantine get exercised.
        chaos_seed: 0xd,
        env_faults: EnvFaultPolicy::seeded(9, env_usize("TQS_CHAOS_FAULT_PCT", 25).min(100) as u8),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_session_builds_for_every_profile() {
        for p in ProfileId::ALL {
            let s = standard_session(p, 5, 1);
            assert_eq!(s.connector.info().name, p.name());
        }
        assert_eq!(budget(42), 42);
    }
}
