//! Regression-replay experiment: re-verify every persisted bug class of the
//! standard campaign against the faulty and fault-free engine builds.
//!
//! Reads the campaign directory `exp_campaign` produced (the two binaries
//! share the `TQS_CAMPAIGN_*` knobs, so they agree on the campaign identity;
//! a mismatch is rejected by the checkpoint-header check). When the directory
//! holds no campaign yet, a fresh hunt runs first so the binary also works
//! standalone. Then:
//!
//! 1. every corpus class is replayed (witness trace) and re-executed (live)
//!    against the faulty build — all classes must still fail — and the
//!    fault-free build — all classes must be fixed;
//! 2. the corpus is compacted to one representative per surviving class
//!    (`TQS_REVERIFY_KEEP_FIXED=1` keeps fixed/stale classes too);
//! 3. a machine-readable `BENCH_reverify.json` is written
//!    (`TQS_REVERIFY_OUT` overrides the path);
//! 4. the process exits non-zero if any class re-verified `Flaky` — on
//!    deterministic simulated engines that can only mean harness or corpus
//!    drift, so CI fails the job.

use tqs_bench::standard_campaign_config;
use tqs_campaign::{
    BuildSpec, Campaign, Checkpoint, Corpus, Json, ReverifyCampaign, ReverifyConfig, ReverifyStatus,
};

fn main() {
    let cfg = standard_campaign_config();
    let out_path =
        std::env::var("TQS_REVERIFY_OUT").unwrap_or_else(|_| "BENCH_reverify.json".to_string());
    let keep_fixed = std::env::var("TQS_REVERIFY_KEEP_FIXED").as_deref() == Ok("1");

    if !Checkpoint::in_dir(&cfg.dir).exists() {
        println!(
            "no campaign found in {}; hunting one first",
            cfg.dir.display()
        );
        let mut campaign = Campaign::new(cfg.clone()).expect("fresh campaign directory");
        campaign.run().expect("campaign hunt");
    }

    let reverify = ReverifyCampaign::load(ReverifyConfig {
        campaign: cfg.clone(),
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: cfg.workers,
    })
    .expect("load the campaign corpus for re-verification");
    println!(
        "Re-verify — {} corpus classes × {} builds, {} workers, corpus {}",
        reverify.entries().len(),
        reverify.config().builds.len(),
        reverify.config().workers,
        reverify.campaign().corpus().path().display()
    );

    let (report, stats) = reverify.run();

    println!();
    println!(
        "{:<12} {:>14} {:>8} {:>8} {:>8}",
        "build", "still-failing", "fixed", "flaky", "stale"
    );
    for build in reverify.config().builds.iter().copied() {
        println!(
            "{:<12} {:>14} {:>8} {:>8} {:>8}",
            build.label(),
            report.count_on(build, ReverifyStatus::StillFailing),
            report.count_on(build, ReverifyStatus::Fixed),
            report.count_on(build, ReverifyStatus::Flaky),
            report.count_on(build, ReverifyStatus::Stale),
        );
    }
    println!(
        "\n{} verdicts in {:.2}s ({:.1} checks/sec)",
        stats.verdicts,
        stats.elapsed.as_secs_f64(),
        stats.checks_per_sec()
    );
    for v in &report.verdicts {
        if matches!(v.status, ReverifyStatus::Flaky | ReverifyStatus::Stale) {
            println!(
                "  {} [{} build] {}: {}",
                v.status.label(),
                v.build.label(),
                v.class_key,
                v.detail
            );
        }
    }

    // Compaction: one representative per surviving class; fixed/stale
    // classes are garbage-collected unless explicitly kept.
    let corpus = Corpus::in_dir(&cfg.dir);
    let compaction = corpus
        .compact(|key| report.retain_class(key, keep_fixed))
        .expect("compact the corpus");
    println!(
        "\ncompaction: kept {} classes, dropped {} duplicates and {} retired classes \
         (keep_fixed={keep_fixed})",
        compaction.kept, compaction.duplicates_dropped, compaction.classes_dropped
    );

    let mut json = match stats.to_json() {
        Json::Obj(members) => members,
        _ => unreachable!("stats serialize to an object"),
    };
    for build in reverify.config().builds.iter().copied() {
        for status in ReverifyStatus::ALL {
            json.push((
                format!("{}_{}", build.label(), status.label().replace('-', "_")),
                Json::count(report.count_on(build, status)),
            ));
        }
    }
    json.push(("compaction_kept".to_string(), Json::count(compaction.kept)));
    json.push((
        "compaction_dropped_classes".to_string(),
        Json::count(compaction.classes_dropped),
    ));
    json.push(("report".to_string(), report.to_json()));
    let body = Json::Obj(json).to_string();
    std::fs::write(&out_path, format!("{body}\n")).expect("write benchmark artifact");
    println!("wrote {out_path}");

    // CI gate: flaky classifications mean replay and live re-execution
    // disagree — impossible on healthy deterministic engines.
    if stats.flaky > 0 {
        eprintln!(
            "error: {} flaky classification(s) — replay and live re-execution disagree",
            stats.flaky
        );
        std::process::exit(1);
    }
}
