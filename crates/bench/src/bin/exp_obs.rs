//! Observability experiment: what does full telemetry cost, and what does
//! it see? Runs the `exp_throughput` workload mix twice — telemetry off,
//! then on (spans + metrics + per-query profiles) — over the row and
//! columnar engines, reports the overhead per workload and overall, dumps
//! the metrics snapshot into `BENCH_obs.json`, and exports a Chrome-trace
//! JSON of the instrumented pass (open it in Perfetto / `chrome://tracing`).
//!
//! Exits non-zero if the overall overhead exceeds the gate — the hot path
//! stays allocation-free and near-zero-cost when telemetry is disabled, and
//! cheap enough to leave on when it isn't.
//!
//! Environment knobs:
//!
//! * `TQS_OBS_ITERS` — iterations per workload per pass (default 120)
//! * `TQS_OBS_MAX_OVERHEAD_PCT` — overhead gate in percent (default 5.0)
//! * `TQS_OBS_OUT` — output JSON path (default `BENCH_obs.json`)
//! * `TQS_OBS_TRACE` — Chrome-trace output path (default
//!   `BENCH_obs_trace.json`; empty string disables the export)

use std::time::Instant;
use tqs_bench::{env_usize, standard_dsg, WORKLOADS};
use tqs_campaign::Json;
use tqs_core::dsg::DsgDatabase;
use tqs_engine::{ColumnarDatabase, Database, DbmsProfile, ProfileId};

/// One timed pass over every workload; returns (total seconds, per-workload
/// seconds in `WORKLOADS` order).
fn pass(row_db: &Database, col_db: &ColumnarDatabase, iters: usize) -> (f64, Vec<f64>) {
    let mut per_workload = Vec::with_capacity(WORKLOADS.len());
    let mut total = 0f64;
    for (name, sql) in WORKLOADS {
        let started = Instant::now();
        for _ in 0..iters {
            row_db
                .execute_sql(sql)
                .unwrap_or_else(|e| panic!("row workload failed: {name}: {e}"));
            col_db
                .execute_sql(sql)
                .unwrap_or_else(|e| panic!("columnar workload failed: {name}: {e}"));
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        per_workload.push(secs);
        total += secs;
    }
    (total, per_workload)
}

fn overhead_pct(off_secs: f64, on_secs: f64) -> f64 {
    (on_secs / off_secs.max(1e-9) - 1.0) * 100.0
}

fn main() {
    let iters = env_usize("TQS_OBS_ITERS", 120);
    let max_overhead: f64 = std::env::var("TQS_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let out_path = std::env::var("TQS_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let trace_path =
        std::env::var("TQS_OBS_TRACE").unwrap_or_else(|_| "BENCH_obs_trace.json".to_string());

    let shards = DsgDatabase::build_sharded(&standard_dsg(240, 77), 2);
    let catalog = shards[0].db.catalog.clone();
    let row_db = Database::new(catalog.clone(), DbmsProfile::build(ProfileId::MysqlLike));
    let col_db = ColumnarDatabase::new(catalog, DbmsProfile::columnar(ProfileId::MysqlLike));

    println!(
        "Telemetry overhead — {iters} iterations per workload per pass, \
         gate {max_overhead:.1}%\n"
    );

    // Warm both paths (page in the data, settle the allocator) before
    // anything is timed.
    tqs_telemetry::set_enabled(false);
    pass(&row_db, &col_db, iters.div_ceil(10));

    let (off_total, off_per) = pass(&row_db, &col_db, iters);

    tqs_telemetry::set_enabled(true);
    tqs_telemetry::reset_metrics();
    let (on_total, on_per) = pass(&row_db, &col_db, iters);
    let snapshot = tqs_telemetry::snapshot_metrics();
    let events = tqs_telemetry::take_events();
    tqs_telemetry::set_enabled(false);

    let mut members = Vec::new();
    println!(
        "{:<18} {:>14} {:>14} {:>10}",
        "workload", "off stmts/sec", "on stmts/sec", "overhead"
    );
    // Each iteration executes the statement on both engines.
    let stmts = (iters * 2) as f64;
    for (i, (name, _)) in WORKLOADS.iter().enumerate() {
        let (off, on) = (stmts / off_per[i], stmts / on_per[i]);
        let pct = overhead_pct(off_per[i], on_per[i]);
        println!("{name:<18} {off:>14.1} {on:>14.1} {pct:>9.2}%");
        members.push((format!("{name}_off_per_sec"), Json::Num(off)));
        members.push((format!("{name}_on_per_sec"), Json::Num(on)));
        members.push((format!("{name}_overhead_pct"), Json::Num(pct)));
    }
    let total_stmts = stmts * WORKLOADS.len() as f64;
    let overall = overhead_pct(off_total, on_total);
    println!(
        "{:<18} {:>14.1} {:>14.1} {:>9.2}%",
        "OVERALL",
        total_stmts / off_total,
        total_stmts / on_total,
        overall
    );
    members.push((
        "overall_off_per_sec".to_string(),
        Json::Num(total_stmts / off_total),
    ));
    members.push((
        "overall_on_per_sec".to_string(),
        Json::Num(total_stmts / on_total),
    ));
    members.push(("overall_overhead_pct".to_string(), Json::Num(overall)));
    members.push(("max_overhead_pct".to_string(), Json::Num(max_overhead)));
    members.push(("iters".to_string(), Json::count(iters)));
    members.push(("trace_events".to_string(), Json::count(events.len())));
    members.push((
        "trace_events_dropped".to_string(),
        Json::count(tqs_telemetry::dropped_events()),
    ));
    members.push(("metrics".to_string(), snapshot.to_json()));

    let body = Json::Obj(members).to_string();
    std::fs::write(&out_path, format!("{body}\n")).expect("write benchmark artifact");
    println!("\nwrote {out_path} ({} metrics counters)", {
        let mut n = 0;
        if let Some(Json::Obj(counters)) = snapshot.to_json().get("counters").cloned() {
            n = counters.len();
        }
        n
    });

    if !trace_path.is_empty() {
        let trace = tqs_telemetry::trace::render_chrome_trace(&events);
        std::fs::write(&trace_path, trace).expect("write trace artifact");
        println!(
            "wrote {trace_path} ({} events — open in Perfetto or chrome://tracing)",
            events.len()
        );
    }

    if overall > max_overhead {
        eprintln!("FAIL: telemetry overhead {overall:.2}% exceeds the {max_overhead:.1}% gate");
        std::process::exit(1);
    }
    println!("overhead gate passed: {overall:.2}% <= {max_overhead:.1}%");
}
