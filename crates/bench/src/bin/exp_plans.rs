//! Plan-space experiment: how many optimizer plans the enumerator opens per
//! statement, whether every plan agrees with the wide-table ground truth on
//! pristine builds, and how fast the plan-space oracle hunts.
//!
//! Two measurements:
//!
//! 1. **Pristine agreement sweep** — for each engine (row, columnar, disk),
//!    drive the [`PlanSpaceOracle`] over a deterministic statement stream on
//!    the fault-free build: every enumerated plan must agree with the ground
//!    truth, so the agreement rate is expected to be 1.0. Reports
//!    plans/statement and plans/sec per engine.
//! 2. **Faulty hunt campaign** — the [`plan_campaign_config`] campaign: all
//!    cells in plan-space mode on seeded-fault builds, which arms the
//!    optimizer fault complement (Table 4 ids 30–34) inside the enumerator.
//!    Reports the deduplicated class count, how many distinct optimizer
//!    fault kinds the hunt surfaced, and verifies the resume guarantee.
//!
//! Emits `BENCH_plans.json`. Environment knobs: the `TQS_PLANS_*` family
//! (see [`plan_campaign_config`]) plus `TQS_PLANS_SWEEP` (statements per
//! engine in the agreement sweep, default 40) and `TQS_PLANS_OUT` (output
//! path, default `BENCH_plans.json`).

use std::sync::Arc;
use std::time::Instant;
use tqs_bench::{env_usize, plan_campaign_config, standard_dsg};
use tqs_campaign::{Campaign, EngineKind, Json};
use tqs_core::dsg::{DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use tqs_core::oracle::{Oracle, OracleVerdict, PlanSpaceOracle};
use tqs_engine::{FaultKind, ProfileId};

struct EngineSweep {
    engine: &'static str,
    statements: usize,
    plans: usize,
    disagreements: usize,
    elapsed_sec: f64,
}

impl EngineSweep {
    fn plans_per_statement(&self) -> f64 {
        self.plans as f64 / (self.statements as f64).max(1.0)
    }

    fn agreement(&self) -> f64 {
        if self.statements == 0 {
            return 1.0;
        }
        1.0 - self.disagreements as f64 / self.statements as f64
    }

    fn plans_per_sec(&self) -> f64 {
        self.plans as f64 / self.elapsed_sec.max(1e-9)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".to_string(), Json::str(self.engine)),
            ("statements".to_string(), Json::count(self.statements)),
            ("plans".to_string(), Json::count(self.plans)),
            (
                "plans_per_statement".to_string(),
                Json::Num(self.plans_per_statement()),
            ),
            ("agreement".to_string(), Json::Num(self.agreement())),
            ("plans_per_sec".to_string(), Json::Num(self.plans_per_sec())),
        ])
    }
}

/// Drive the plan-space oracle over `n` generated statements on the pristine
/// build of `engine`.
fn sweep(engine: EngineKind, dsg: &Arc<DsgDatabase>, n: usize) -> EngineSweep {
    let mut conn = engine.connect_pristine(ProfileId::MysqlLike, dsg);
    let mut oracle = PlanSpaceOracle::shared(Arc::clone(dsg));
    let mut generator = QueryGenerator::new(QueryGenConfig {
        seed: 0x91A5 ^ engine.label().len() as u64,
        ..Default::default()
    });
    let mut statements = 0usize;
    let mut disagreements = 0usize;
    let started = Instant::now();
    for _ in 0..n {
        let stmt = generator.generate(dsg, None, &UniformScorer);
        match oracle.check(&stmt, &mut conn) {
            OracleVerdict::Skip => {}
            OracleVerdict::Pass => statements += 1,
            OracleVerdict::Bugs(_) => {
                statements += 1;
                disagreements += 1;
            }
        }
    }
    EngineSweep {
        engine: engine.label(),
        statements,
        plans: oracle.plans_enumerated(),
        disagreements,
        elapsed_sec: started.elapsed().as_secs_f64(),
    }
}

fn main() {
    let out_path =
        std::env::var("TQS_PLANS_OUT").unwrap_or_else(|_| "BENCH_plans.json".to_string());

    // Part 1: pristine agreement sweep, one engine at a time.
    let dsg = Arc::new(DsgDatabase::build(&standard_dsg(200, 77)));
    let n = env_usize("TQS_PLANS_SWEEP", 40);
    println!("Plan-space agreement sweep — {n} statements per engine (pristine builds)");
    println!(
        "{:<10} {:>11} {:>8} {:>12} {:>10} {:>11}",
        "engine", "statements", "plans", "plans/stmt", "agreement", "plans/sec"
    );
    let mut sweeps = Vec::new();
    for engine in EngineKind::ALL {
        let s = sweep(engine, &dsg, n);
        println!(
            "{:<10} {:>11} {:>8} {:>12.1} {:>10.3} {:>11.1}",
            s.engine,
            s.statements,
            s.plans,
            s.plans_per_statement(),
            s.agreement(),
            s.plans_per_sec()
        );
        assert!(
            (s.agreement() - 1.0).abs() < 1e-9,
            "pristine {} build must agree on every enumerated plan",
            s.engine
        );
        sweeps.push(s);
    }

    // Part 2: the plan-space hunt campaign on seeded-fault builds.
    let cfg = plan_campaign_config();
    let dir = cfg.dir.clone();
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::new(cfg.clone()).expect("fresh campaign directory");
    println!();
    println!(
        "Plan-space hunt — {} cells, {} queries/cell, engines {:?}",
        campaign.cells_total(),
        cfg.queries_per_cell,
        cfg.engines.iter().map(|e| e.label()).collect::<Vec<_>>()
    );
    let stats = campaign.run().expect("campaign run");
    assert!(campaign.is_complete());

    let mut optimizer_kinds: Vec<FaultKind> = campaign
        .triage()
        .classes()
        .iter()
        .flat_map(|c| c.representative.fired.iter().copied())
        .filter(|f| FaultKind::OPTIMIZER.contains(f))
        .collect();
    optimizer_kinds.sort_by_key(|f| f.table4_id());
    optimizer_kinds.dedup();

    println!();
    println!("{:<28} {:>12}", "metric", "value");
    println!("{:<28} {:>12}", "queries executed", stats.queries);
    println!("{:<28} {:>12}", "plans executed", stats.plans);
    println!("{:<28} {:>12.1}", "plans/sec", stats.plans_per_sec());
    println!("{:<28} {:>12}", "raw bug reports", stats.raw_reports);
    println!("{:<28} {:>12}", "bug classes", stats.bug_classes);
    println!(
        "{:<28} {:>12}",
        "optimizer fault kinds",
        optimizer_kinds.len()
    );
    for f in &optimizer_kinds {
        println!("  [{:>2}] {f:?}", f.table4_id());
    }

    // Resume check: the plan-space grid must reload bit-identically.
    let resumed = Campaign::resume(cfg).expect("resume the finished campaign");
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.class_keys(),
        campaign.class_keys(),
        "persisted corpus must reproduce the plan-space class set"
    );
    println!();
    println!(
        "resume check: {} classes reload bit-identically from {}",
        resumed.class_keys().len(),
        dir.display()
    );

    let json = Json::Obj(vec![
        (
            "sweep".to_string(),
            Json::Arr(sweeps.iter().map(EngineSweep::to_json).collect()),
        ),
        ("hunt_queries".to_string(), Json::count(stats.queries)),
        ("hunt_plans".to_string(), Json::count(stats.plans)),
        (
            "hunt_plans_per_sec".to_string(),
            Json::Num(stats.plans_per_sec()),
        ),
        (
            "hunt_raw_reports".to_string(),
            Json::count(stats.raw_reports),
        ),
        (
            "hunt_bug_classes".to_string(),
            Json::count(stats.bug_classes),
        ),
        (
            "optimizer_fault_kinds".to_string(),
            Json::Arr(
                optimizer_kinds
                    .iter()
                    .map(|f| Json::count(f.table4_id() as usize))
                    .collect(),
            ),
        ),
        (
            "resume_check_classes".to_string(),
            Json::count(resumed.class_keys().len()),
        ),
    ]);
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark artifact");
    println!("wrote {out_path}");
}
