//! Figure 10: effect of parallel search — number of queries processed within
//! a fixed wall-clock budget as the number of clients grows from 1 to 5.

use std::sync::Arc;
use std::time::Duration;
use tqs_bench::standard_dsg;
use tqs_core::backend::EngineConnector;
use tqs_core::dsg::DsgDatabase;
use tqs_core::parallel::parallel_explore;
use tqs_engine::ProfileId;

fn main() {
    let millis: u64 = std::env::var("TQS_WALL_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let dsg = Arc::new(DsgDatabase::build(&standard_dsg(250, 55)));
    println!("Figure 10 — parallel search on MySQL-like ({millis} ms budget per point)");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "clients", "queries", "bugs", "diversity"
    );
    for clients in 1..=5 {
        let stats = parallel_explore(
            &dsg,
            clients,
            Duration::from_millis(millis),
            9_000 + clients as u64,
            |_| EngineConnector::faulty(ProfileId::MysqlLike),
        )
        .expect("engine workers load the catalog");
        println!(
            "{:<8} {:>10} {:>10} {:>10}",
            stats.clients, stats.queries_processed, stats.bugs_found, stats.diversity
        );
    }
}
