//! Table 5: ablation — full TQS vs TQS!Noise (no noise injection), TQS!GT
//! (differential testing instead of ground truth) and TQS!KQE (uniform random
//! walk), per DBMS; reports query-graph diversity and bug count.

use tqs_bench::{budget, standard_dsg};
use tqs_core::dsg::DsgConfig;
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;

fn run(
    profile: ProfileId,
    dsg_cfg: &DsgConfig,
    use_gt: bool,
    use_kqe: bool,
    iterations: usize,
) -> (String, (usize, usize, usize)) {
    let mut session = TqsSession::builder()
        .profile(profile)
        .dsg_config(dsg_cfg)
        .config(TqsConfig {
            iterations,
            use_ground_truth: use_gt,
            use_kqe,
            ..Default::default()
        })
        .build()
        .expect("session build");
    let s = session.run();
    // The oracle names itself through the trait: "TQS" or "TQS!GT".
    (s.tool, (s.diversity, s.bug_count, s.bug_type_count))
}

fn main() {
    let iterations = budget(300);
    println!("Table 5 — ablation ({iterations} queries per cell)\n");
    println!(
        "{:<14} {:<10} {:>10} {:>6} {:>6}",
        "DBMS", "variant", "diversity", "bugs", "types"
    );
    for profile in ProfileId::ALL {
        let with_noise = standard_dsg(250, 31);
        let mut no_noise = standard_dsg(250, 31);
        no_noise.noise = None;
        let (tqs_name, full) = run(profile, &with_noise, true, true, iterations);
        let (_, without_noise) = run(profile, &no_noise, true, true, iterations);
        let (diff_name, without_gt) = run(profile, &with_noise, false, true, iterations);
        let (_, without_kqe) = run(profile, &with_noise, true, false, iterations);
        let rows = [
            (tqs_name, full),
            ("TQS!Noise".to_string(), without_noise),
            (diff_name, without_gt),
            ("TQS!KQE".to_string(), without_kqe),
        ];
        for (label, (div, bugs, types)) in rows {
            println!(
                "{:<14} {:<10} {:>10} {:>6} {:>6}",
                profile.name(),
                label,
                div,
                bugs,
                types
            );
        }
        println!();
    }
}
