//! Execution-path throughput experiment: statements/sec through the row,
//! columnar and disk engines, plus join/group-by and page-store microloops,
//! on the standard testing database. Emits `BENCH_throughput.json`.
//!
//! This is the microbenchmark behind the allocation-free hot-path work
//! (binary `KeyBuf` join keys, compiled predicate scopes, column pruning):
//! `exp_campaign` measures the whole fleet, this binary isolates the
//! per-statement execution rate the fleet multiplies.
//!
//! Environment knobs:
//!
//! * `TQS_THROUGHPUT_ITERS` — iterations per workload (default 300)
//! * `TQS_THROUGHPUT_OUT` — output JSON path (default `BENCH_throughput.json`)

use std::time::Instant;
use tqs_bench::{env_usize, standard_dsg, WORKLOADS};
use tqs_campaign::Json;
use tqs_core::dsg::DsgDatabase;
use tqs_engine::{ColumnarDatabase, Database, DbmsProfile, DiskDatabase, ProfileId};
use tqs_sql::parser::parse_stmt;

fn run_workloads<F>(label: &str, mut execute: F, iters: usize) -> Vec<(String, Json)>
where
    F: FnMut(&str) -> usize,
{
    let mut members = Vec::new();
    let mut total_stmts = 0usize;
    let mut total_secs = 0f64;
    for (name, sql) in WORKLOADS {
        let started = Instant::now();
        let mut rows = 0usize;
        for _ in 0..iters {
            rows = execute(sql);
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let qps = iters as f64 / secs;
        println!("{label:>9} {name:<18} {qps:>12.1} stmts/sec  ({rows} rows)");
        members.push((format!("{label}_{name}_per_sec"), Json::Num(qps)));
        total_stmts += iters;
        total_secs += secs;
    }
    let overall = total_stmts as f64 / total_secs.max(1e-9);
    println!("{label:>9} {:<18} {overall:>12.1} stmts/sec", "OVERALL");
    members.push((format!("{label}_overall_per_sec"), Json::Num(overall)));
    members
}

fn main() {
    let iters = env_usize("TQS_THROUGHPUT_ITERS", 300);
    let out_path =
        std::env::var("TQS_THROUGHPUT_OUT").unwrap_or_else(|_| "BENCH_throughput.json".to_string());

    // The same testing database the campaign hunts (first shard of 2).
    let shards = DsgDatabase::build_sharded(&standard_dsg(240, 77), 2);
    let catalog = shards[0].db.catalog.clone();
    for (name, sql) in WORKLOADS {
        // fail fast if a workload references a table this schema lacks
        let stmt = parse_stmt(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        for t in stmt.from.tables() {
            assert!(
                catalog.table(&t.table).is_some(),
                "{name}: schema lost table {}",
                t.table
            );
        }
    }

    println!(
        "Throughput — {} iterations per workload, faulty MySQL-like build\n",
        iters
    );
    let row_db = Database::new(catalog.clone(), DbmsProfile::build(ProfileId::MysqlLike));
    let mut members = run_workloads(
        "row",
        |sql| {
            row_db
                .execute_sql(sql)
                .unwrap_or_else(|e| panic!("row workload failed: {sql}: {e}"))
                .result
                .row_count()
        },
        iters,
    );
    println!();
    let col_db = ColumnarDatabase::new(catalog, DbmsProfile::columnar(ProfileId::MysqlLike));
    members.extend(run_workloads(
        "columnar",
        |sql| {
            col_db
                .execute_sql(sql)
                .unwrap_or_else(|e| panic!("columnar workload failed: {sql}: {e}"))
                .result
                .row_count()
        },
        iters,
    ));

    // Disk-engine microloops: the raw page-store access paths every disk
    // SQL statement sits on — full B+tree leaf-chain scan through the
    // buffer pool, root-to-leaf point lookup by rowid, and an end-to-end
    // hash join over heap scans.
    println!();
    let mut disk_db = DiskDatabase::new(
        shards[0].db.catalog.clone(),
        DbmsProfile::disk(ProfileId::MysqlLike),
    )
    .expect("disk store creation in the temp dir");
    let rowids = disk_db
        .store_mut()
        .rows_inserted("T1")
        .expect("T1 row count");
    assert!(rowids > 0, "disk store loaded no rows for T1");
    fn disk_loop(name: &str, iters: usize, mut op: impl FnMut(usize) -> usize) -> (String, Json) {
        let started = Instant::now();
        let mut rows = 0usize;
        for i in 0..iters {
            rows = op(i);
        }
        let qps = iters as f64 / started.elapsed().as_secs_f64().max(1e-9);
        println!(
            "{:>9} {name:<18} {qps:>12.1} ops/sec  ({rows} rows)",
            "disk"
        );
        (format!("disk_{name}_per_sec"), Json::Num(qps))
    }
    let scan = disk_loop("scan", iters, |_| {
        disk_db
            .store_mut()
            .scan("T1")
            .expect("disk scan")
            .row_count()
    });
    let lookup = disk_loop("point_lookup", iters, |i| {
        let rowid = (i as u64 % rowids) + 1;
        usize::from(
            disk_db
                .store_mut()
                .get("T1", rowid)
                .expect("disk point lookup")
                .is_some(),
        )
    });
    let join = disk_loop("hash_join", iters, |_| {
        disk_db
            .execute_sql(WORKLOADS[0].1)
            .expect("disk hash join")
            .result
            .row_count()
    });
    members.extend([scan, lookup, join]);
    members.push(("iters".to_string(), Json::count(iters)));

    let body = Json::Obj(members).to_string();
    std::fs::write(&out_path, format!("{body}\n")).expect("write benchmark artifact");
    println!("\nwrote {out_path}");
}
