//! Campaign experiment: fleet throughput, triage dedup ratio and resume
//! verification for the sharded hunt-campaign subsystem.
//!
//! Runs one full campaign — (shard × profile × oracle × engine) cells
//! drained by a work-stealing worker fleet — on seeded fault builds
//! (including the disk engine with its storage-fault complement), prints a summary
//! table, re-opens the campaign directory through `Campaign::resume` to
//! verify the persisted state reproduces the in-memory class set, and emits
//! a machine-readable `BENCH_campaign.json`.
//!
//! Environment knobs:
//!
//! * `TQS_CAMPAIGN_QUERIES` — query budget per cell (default 150)
//! * `TQS_CAMPAIGN_SHARDS` — wide-table shards (default 4)
//! * `TQS_CAMPAIGN_WORKERS` — worker threads (default 4)
//! * `TQS_CAMPAIGN_DIR` — campaign directory (default `target/exp_campaign`,
//!   wiped at startup)
//! * `TQS_CAMPAIGN_OUT` — output JSON path (default `BENCH_campaign.json`)
//! * `TQS_TELEMETRY` — `1` enables spans/metrics/profiles for the run; the
//!   metrics snapshot is folded into the JSON artifact
//! * `TQS_CAMPAIGN_STATUS_ADDR` — bind a live status endpoint (e.g.
//!   `127.0.0.1:7071`; `curl /status`, `/metrics`, or `/stream` during the
//!   hunt)
//! * `TQS_CAMPAIGN_STOP` — request a graceful stop after this many seconds;
//!   workers finish their current cell, checkpoint, and drain, and the same
//!   directory resumes the remaining cells on the next run

use tqs_bench::standard_campaign_config;
use tqs_campaign::{Campaign, CampaignStatusServer, Json};

fn main() {
    tqs_telemetry::init_from_env(false);
    let cfg = standard_campaign_config();
    let (queries_per_cell, shards, workers) = (cfg.queries_per_cell, cfg.shards, cfg.workers);
    let dir = cfg.dir.clone();
    let out_path =
        std::env::var("TQS_CAMPAIGN_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());
    let _ = std::fs::remove_dir_all(&dir);

    let mut campaign = Campaign::new(cfg.clone()).expect("fresh campaign directory");
    let status_server = std::env::var("TQS_CAMPAIGN_STATUS_ADDR").ok().map(|addr| {
        let server = CampaignStatusServer::start(campaign.status_board(), &addr)
            .expect("bind campaign status endpoint");
        println!(
            "status endpoint: http://{0}/status  (live: http://{0}/stream)",
            server.local_addr()
        );
        server
    });
    if let Some(secs) = std::env::var("TQS_CAMPAIGN_STOP")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        let handle = campaign.stop_handle();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            println!("TQS_CAMPAIGN_STOP: requesting graceful stop after {secs}s");
            handle.request_stop();
        });
    }
    println!(
        "Campaign — {} cells ({} shards × {} profiles × {} oracles × {} engines), \
         {} workers, {} queries/cell",
        campaign.cells_total(),
        shards,
        cfg.profiles.len(),
        cfg.oracles.len(),
        cfg.engines.len(),
        workers,
        queries_per_cell
    );

    let stats = campaign.run().expect("campaign run");
    if campaign.stop_handle().is_stop_requested() {
        println!(
            "stopped gracefully with {} cells still pending (resume to finish)",
            campaign.cells_total() - stats.cells_done
        );
    } else {
        assert!(campaign.is_complete());
    }

    println!();
    println!("{:<28} {:>12}", "metric", "value");
    println!("{:<28} {:>12}", "queries executed", stats.queries);
    println!("{:<28} {:>12.1}", "queries/sec", stats.queries_per_sec());
    println!("{:<28} {:>12}", "engine statements", stats.statements);
    println!(
        "{:<28} {:>12.1}",
        "statements/sec",
        stats.statements_per_sec()
    );
    println!("{:<28} {:>12}", "raw bug reports", stats.raw_reports);
    println!("{:<28} {:>12}", "bug classes", stats.bug_classes);
    println!("{:<28} {:>12.1}", "dedup ratio", stats.dedup_ratio());
    println!("{:<28} {:>12.1}", "classes/hour", stats.bugs_per_hour());
    println!("{:<28} {:>12}", "diversity", stats.diversity);
    println!("{:<28} {:>12}", "cells drained", stats.cells_drained);

    println!();
    println!("top bug classes (by sightings):");
    let mut classes: Vec<_> = campaign.triage().classes().to_vec();
    classes.sort_by_key(|c| std::cmp::Reverse(c.sightings));
    for c in classes.iter().take(8) {
        println!(
            "  {:>5}×  [{}] {}",
            c.sightings,
            c.representative.bug_type(),
            c.representative
                .minimized_sql
                .as_deref()
                .unwrap_or(&c.representative.sql)
        );
    }

    // Resume check: re-open the directory cold and verify the persisted
    // corpus reproduces the in-memory deduplicated class set. (After a
    // graceful stop the reopened campaign is incomplete by design — the
    // class-set equality below still must hold.)
    let resumed = Campaign::resume(cfg).expect("resume the finished campaign");
    assert_eq!(resumed.is_complete(), campaign.is_complete());
    assert_eq!(
        resumed.class_keys(),
        campaign.class_keys(),
        "persisted corpus must reproduce the class set"
    );
    println!();
    println!(
        "resume check: {} classes reload bit-identically from {}",
        resumed.class_keys().len(),
        dir.display()
    );

    let mut json = match stats.to_json() {
        Json::Obj(members) => members,
        _ => unreachable!("stats serialize to an object"),
    };
    json.push(("shards".to_string(), Json::count(shards)));
    json.push(("workers".to_string(), Json::count(workers)));
    json.push((
        "engines".to_string(),
        Json::Arr(
            campaign
                .config()
                .engines
                .iter()
                .map(|e| Json::str(e.label()))
                .collect(),
        ),
    ));
    json.push((
        "queries_per_cell".to_string(),
        Json::count(queries_per_cell),
    ));
    json.push((
        "resume_check_classes".to_string(),
        Json::count(resumed.class_keys().len()),
    ));
    if tqs_telemetry::enabled() {
        json.push((
            "metrics".to_string(),
            tqs_telemetry::snapshot_metrics().to_json(),
        ));
    }
    let body = Json::Obj(json).to_string();
    std::fs::write(&out_path, format!("{body}\n")).expect("write benchmark artifact");
    println!("wrote {out_path}");
    if let Some(server) = status_server {
        server.stop();
    }
}
