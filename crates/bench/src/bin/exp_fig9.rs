//! Figure 9: bug count vs bug types over an extended (2×) budget on the
//! MySQL-like profile — bug count keeps growing roughly linearly while the
//! number of bug types plateaus.

use tqs_bench::{budget, standard_session};
use tqs_engine::ProfileId;

fn main() {
    let iterations = budget(800);
    let mut session = standard_session(ProfileId::MysqlLike, iterations, 4242);
    let stats = session.run();
    println!(
        "Figure 9 — bugs vs bug types on {} ({iterations} queries ≈ 48 'hours')",
        stats.dbms
    );
    println!("{:<6} {:>10} {:>10}", "hour", "bug count", "bug types");
    for (b, t) in stats.bug_timeline.iter().zip(&stats.bug_type_timeline) {
        println!("{:<6} {:>10} {:>10}", b.hour, b.value, t.value);
    }
}
