//! Table 4: detected bugs and bug types per DBMS after a fixed testing budget
//! (the paper's 24-hour run → an iteration budget here). Root causes come
//! from the engine's fired-fault provenance, standing in for developer
//! analysis.

use tqs_bench::{budget, standard_session};
use tqs_engine::ProfileId;

fn main() {
    let iterations = budget(400);
    println!("Table 4 — detected bugs per DBMS ({iterations} queries per DBMS)\n");
    println!(
        "{:<14} {:<8} {:>6} {:>10}   bug types (root causes)",
        "DBMS", "oracle", "bugs", "bug types"
    );
    let mut total_bugs = 0;
    for profile in ProfileId::ALL {
        let mut session = standard_session(profile, iterations, 2024);
        let stats = session.run();
        total_bugs += stats.bug_count;
        println!(
            "{:<14} {:<8} {:>6} {:>10}",
            stats.dbms, stats.tool, stats.bug_count, stats.bug_type_count
        );
        for fault in session.bugs.implicated_faults() {
            println!(
                "    #{:<2} [{:<13}] {:<10} {}",
                fault.table4_id(),
                fault.severity().label(),
                fault.status(),
                fault.description()
            );
        }
    }
    println!("\ntotal bugs: {total_bugs}");
    println!("(paper: 115 bugs total; 31/30/31/23 per DBMS; 7/5/5/3 bug types)");
}
