//! Figure 8(a–d): query-graph diversity (distinct isomorphic sets) over the
//! testing budget, TQS vs the SQLancer baselines, per DBMS.

use tqs_bench::{budget, standard_dsg, standard_session};
use tqs_core::baselines::{run_baseline, Baseline, BaselineConfig};
use tqs_core::dsg::DsgDatabase;
use tqs_engine::ProfileId;

fn main() {
    let iterations = budget(400);
    // the paper pairs each DBMS with the baselines SQLancer supports there
    let pairs = [
        (ProfileId::MysqlLike, vec![Baseline::Pqs, Baseline::Tlp]),
        (ProfileId::MariadbLike, vec![Baseline::NoRec]),
        (ProfileId::TidbLike, vec![Baseline::Tlp]),
        (ProfileId::XdbLike, vec![Baseline::Pqs, Baseline::Tlp]),
    ];
    for (profile, baselines) in pairs {
        println!("== Figure 8 diversity — {} ==", profile.name());
        let mut session = standard_session(profile, iterations, 88);
        let tqs = session.run();
        print_series("TQS", &tqs.diversity_timeline);
        let dsg = DsgDatabase::build(&standard_dsg(250, 88));
        for b in baselines {
            let stats = run_baseline(
                b,
                profile,
                &dsg,
                &BaselineConfig {
                    iterations,
                    queries_per_hour: iterations.div_ceil(24).max(1),
                    ..Default::default()
                },
            );
            print_series(b.name(), &stats.diversity_timeline);
        }
        println!();
    }
}

fn print_series(label: &str, series: &[tqs_core::tqs::TimelinePoint]) {
    let pts: Vec<String> = series
        .iter()
        .map(|p| format!("{}:{}", p.hour, p.value))
        .collect();
    println!("{:<6} {}", label, pts.join(" "));
}
