//! Mutation-workload experiment: DML statement throughput per engine plus a
//! faulty-build hunt catch summary. Emits `BENCH_dml.json`.
//!
//! Two questions, one artifact:
//!
//! * **How fast do mutations execute?** Generated DML + transaction
//!   programs applied to long-lived pristine builds of the row, columnar
//!   and disk engines — statements/sec, with the disk engine paying the
//!   real WAL commit protocol at every commit boundary.
//! * **Does the hunt catch the seeded DML complement?** The mutation oracle
//!   runs generated programs against the faulty builds; the summary counts
//!   buggy programs, raw reports and distinct [`FaultKind::DML`] kinds per
//!   engine.
//!
//! Environment knobs:
//!
//! * `TQS_DML_PROGRAMS` — programs per engine and leg (default 60)
//! * `TQS_DML_OUT` — output JSON path (default `BENCH_dml.json`)

use std::collections::BTreeSet;
use std::time::Instant;
use tqs_bench::{env_usize, standard_dsg};
use tqs_campaign::Json;
use tqs_core::backend::{DbmsConnector, EngineConnector};
use tqs_core::dsg::DsgDatabase;
use tqs_core::mutation::{DmlGenConfig, DmlGenerator, DmlOracle};
use tqs_core::oracle::OracleVerdict;
use tqs_engine::{ColumnarDatabase, Database, DbmsProfile, DiskDatabase, ProfileId};
use tqs_sql::ast::DmlStmt;

/// Apply every program to one long-lived engine, timing the statements.
/// State drifts as programs accumulate — that is the point: steady-state
/// mutation throughput, not load-then-mutate-once. Statements the engine
/// rejects (e.g. a predicate over rows a previous DELETE drained) count as
/// executed attempts.
fn time_engine(
    label: &str,
    programs: &[Vec<DmlStmt>],
    mut exec: impl FnMut(&DmlStmt) -> bool,
) -> Vec<(String, Json)> {
    let started = Instant::now();
    let mut stmts = 0usize;
    let mut rejected = 0usize;
    for program in programs {
        for stmt in program {
            stmts += 1;
            if !exec(stmt) {
                rejected += 1;
            }
        }
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let per_sec = stmts as f64 / secs;
    println!("{label:>9}  {per_sec:>12.1} DML stmts/sec  ({stmts} stmts, {rejected} rejected)");
    vec![
        (format!("{label}_dml_stmts_per_sec"), Json::Num(per_sec)),
        (format!("{label}_dml_stmts"), Json::count(stmts)),
        (format!("{label}_dml_rejected"), Json::count(rejected)),
    ]
}

/// Hunt leg: the mutation oracle over `programs` fresh programs against one
/// faulty connector (each program reloads the pristine catalog — the
/// campaign's per-program cost).
fn hunt(
    label: &str,
    dsg: &DsgDatabase,
    conn: &mut dyn DbmsConnector,
    programs: usize,
    seed: u64,
) -> Vec<(String, Json)> {
    let oracle = DmlOracle::from_dsg(dsg);
    let mut generator = DmlGenerator::new(DmlGenConfig {
        seed,
        ..Default::default()
    });
    let started = Instant::now();
    let mut buggy = 0usize;
    let mut reports = 0usize;
    let mut kinds = BTreeSet::new();
    for _ in 0..programs {
        let program = generator.generate_program(dsg);
        if let OracleVerdict::Bugs(found) = oracle.check_program(&program, conn) {
            buggy += 1;
            reports += found.len();
            kinds.extend(found.iter().flat_map(|r| r.fired.iter().copied()));
        }
    }
    let per_sec = programs as f64 / started.elapsed().as_secs_f64().max(1e-9);
    println!(
        "{label:>9}  {per_sec:>12.1} programs/sec   ({buggy}/{programs} buggy, \
         {reports} reports, {} distinct DML kinds)",
        kinds.len()
    );
    vec![
        (format!("{label}_hunt_programs_per_sec"), Json::Num(per_sec)),
        (format!("{label}_hunt_buggy_programs"), Json::count(buggy)),
        (format!("{label}_hunt_reports"), Json::count(reports)),
        (
            format!("{label}_hunt_distinct_dml_kinds"),
            Json::count(kinds.len()),
        ),
    ]
}

fn main() {
    let programs = env_usize("TQS_DML_PROGRAMS", 60);
    let out_path = std::env::var("TQS_DML_OUT").unwrap_or_else(|_| "BENCH_dml.json".to_string());

    let dsg = DsgDatabase::build(&standard_dsg(240, 77));
    let catalog = dsg.db.catalog.clone();
    let mut generator = DmlGenerator::new(DmlGenConfig {
        seed: 77,
        ..Default::default()
    });
    let pool: Vec<Vec<DmlStmt>> = (0..programs)
        .map(|_| generator.generate_program(&dsg))
        .collect();

    println!("DML throughput — {programs} programs, pristine builds\n");
    let mut row = Database::new(catalog.clone(), DbmsProfile::pristine(ProfileId::MysqlLike));
    let mut members = time_engine("row", &pool, |stmt| row.execute_dml(stmt).is_ok());
    let mut col =
        ColumnarDatabase::new(catalog.clone(), DbmsProfile::pristine(ProfileId::MysqlLike));
    members.extend(time_engine("columnar", &pool, |stmt| {
        col.execute_dml(stmt).is_ok()
    }));
    let mut disk = DiskDatabase::new(catalog, DbmsProfile::pristine(ProfileId::MysqlLike))
        .expect("disk store creation in the temp dir");
    members.extend(time_engine("disk", &pool, |stmt| {
        disk.execute_dml(stmt).is_ok()
    }));

    println!("\nDML hunt — {programs} programs per faulty build\n");
    for (label, mut conn) in [
        ("row", EngineConnector::connect(ProfileId::MysqlLike, &dsg)),
        (
            "columnar",
            EngineConnector::connect_columnar(ProfileId::MysqlLike, &dsg),
        ),
        (
            "disk",
            EngineConnector::connect_disk(ProfileId::MysqlLike, &dsg),
        ),
    ] {
        members.extend(hunt(label, &dsg, &mut conn, programs, 909));
    }
    members.push(("programs".to_string(), Json::count(programs)));

    let body = Json::Obj(members).to_string();
    std::fs::write(&out_path, format!("{body}\n")).expect("write benchmark artifact");
    println!("\nwrote {out_path}");
}
