//! Table 3: the tested DBMS inventory (here: the four simulated profiles and
//! their metadata), plus the registered test oracles reported through the
//! `Oracle` trait.

use tqs_bench::standard_dsg;
use tqs_core::backend::EngineConnector;
use tqs_core::dsg::DsgDatabase;
use tqs_core::oracle::{
    DifferentialOracle, NorecOracle, Oracle, PlanDiffOracle, PqsOracle, TlpOracle, TqsOracle,
};
use tqs_engine::{DbmsProfile, ProfileId};

fn main() {
    println!("Table 3 — tested (simulated) DBMS profiles");
    println!(
        "{:<14} {:<16} {:>10} {:>14} {:>12} {:>8} {:>14}",
        "DBMS", "Version", "DB-Engines", "StackOverflow", "GitHub stars", "LOC", "First release"
    );
    for id in ProfileId::ALL {
        let p = DbmsProfile::build(id);
        println!(
            "{:<14} {:<16} {:>10} {:>14} {:>12} {:>8} {:>14}",
            p.info.name,
            p.info.version,
            p.info
                .db_engines_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            p.info
                .stack_overflow_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            p.info.github_stars.unwrap_or("-"),
            p.info.loc,
            p.info.first_release
        );
    }

    // The oracle inventory, each named through the `Oracle` trait.
    let dsg = DsgDatabase::build(&standard_dsg(40, 3));
    let oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(TqsOracle::new(&dsg)),
        Box::new(PlanDiffOracle::new(&dsg)),
        Box::new(PqsOracle::new(&dsg)),
        Box::new(TlpOracle),
        Box::new(NorecOracle),
        Box::new(DifferentialOracle::new(
            EngineConnector::connect_columnar_pristine(ProfileId::MysqlLike, &dsg),
        )),
    ];
    let names: Vec<&str> = oracles.iter().map(|o| o.name()).collect();
    println!("\nregistered oracles: {}", names.join(", "));
}
