//! Table 3: the tested DBMS inventory (here: the four simulated profiles and
//! their metadata).

use tqs_engine::{DbmsProfile, ProfileId};

fn main() {
    println!("Table 3 — tested (simulated) DBMS profiles");
    println!(
        "{:<14} {:<16} {:>10} {:>14} {:>12} {:>8} {:>14}",
        "DBMS", "Version", "DB-Engines", "StackOverflow", "GitHub stars", "LOC", "First release"
    );
    for id in ProfileId::ALL {
        let p = DbmsProfile::build(id);
        println!(
            "{:<14} {:<16} {:>10} {:>14} {:>12} {:>8} {:>14}",
            p.info.name,
            p.info.version,
            p.info
                .db_engines_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            p.info
                .stack_overflow_rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            p.info.github_stars.unwrap_or("-"),
            p.info.loc,
            p.info.first_release
        );
    }
}
