//! Chaos experiment: the supervised campaign runtime under injected panics
//! and environmental IO faults.
//!
//! Two legs over the identical cell grid (see `chaos_campaign_config`):
//!
//! 1. **Reference** — no injected failures; records the fault-free bug-class
//!    set.
//! 2. **Chaos** — a seeded subset of cells panics mid-cell (persistent
//!    offenders panic on every retry and end up quarantined) while every
//!    corpus/checkpoint/quarantine append runs behind an `EnvFaultPolicy`
//!    injecting EIO, short writes, and fsync failures.
//!
//! The binary asserts the supervision contract — the chaos campaign
//! completes, every panicking cell surfaces as a `harness-panic` incident
//! class, persistent offenders are quarantined, and the *ordinary* bug-class
//! set is byte-identical to the reference — and emits `BENCH_chaos.json`.
//!
//! Environment knobs:
//!
//! * `TQS_CHAOS_QUERIES` — query budget per cell (default 40)
//! * `TQS_CHAOS_WORKERS` — worker threads (default 2)
//! * `TQS_CHAOS_PANIC_PCT` — percentage of cells that panic (default 40)
//! * `TQS_CHAOS_FAULT_PCT` — per-IO-op injected fault rate (default 25)
//! * `TQS_CHAOS_DIR` — work directory (default `target/exp_chaos`; wiped)
//! * `TQS_CHAOS_OUT` — output JSON path (default `BENCH_chaos.json`)

use tqs_bench::{chaos_campaign_config, chaos_supervisor};
use tqs_campaign::{Campaign, Checkpoint, Json};

fn main() {
    tqs_telemetry::init_from_env(false);
    // Worker panics are the *point* here; keep the default hook from
    // spraying backtraces over the report.
    std::panic::set_hook(Box::new(|_| {}));

    let base = chaos_campaign_config();
    let out_path = std::env::var("TQS_CHAOS_OUT").unwrap_or_else(|_| "BENCH_chaos.json".into());
    let _ = std::fs::remove_dir_all(&base.dir);

    // Leg 1: fault-free reference.
    let mut ref_cfg = base.clone();
    ref_cfg.dir = base.dir.join("reference");
    let mut reference = Campaign::new(ref_cfg).expect("fresh reference directory");
    println!(
        "reference — {} cells, {} workers, {} queries/cell",
        reference.cells_total(),
        base.workers,
        base.queries_per_cell
    );
    let ref_stats = reference.run().expect("reference run");
    assert!(reference.is_complete());
    let ref_classes = reference.class_keys();

    // Leg 2: same grid with chaos panics + environmental IO faults.
    let mut chaos_cfg = base.clone();
    chaos_cfg.dir = base.dir.join("chaos");
    chaos_cfg.supervisor = chaos_supervisor();
    let sup = chaos_cfg.supervisor.clone();
    let mut chaos = Campaign::new(chaos_cfg).expect("fresh chaos directory");
    let cells_total = chaos.cells_total();
    let picked: Vec<usize> = (0..cells_total)
        .filter(|&id| sup.chaos_panics(id, 1))
        .collect();
    let persistent: Vec<usize> = (0..cells_total)
        .filter(|&id| sup.chaos_persistent(id))
        .collect();
    println!(
        "chaos — {} cells, {} panic ({} persistently), IO fault rate {}%",
        cells_total,
        picked.len(),
        persistent.len(),
        std::env::var("TQS_CHAOS_FAULT_PCT").unwrap_or_else(|_| "25".into()),
    );
    assert!(
        picked.len() * 10 >= cells_total,
        "chaos leg must panic in at least 10% of cells to exercise supervision"
    );

    let stats = chaos.run().expect("chaos run");
    assert!(chaos.is_complete(), "supervised campaign must finish");
    assert!(
        sup.env_faults.injected() > 0,
        "the env fault policy never fired"
    );

    // Every panicking cell surfaced as a harness incident class.
    let classes = chaos.class_keys();
    for &id in &picked {
        let label = format!("harness-panic:cell-{id}");
        assert!(
            classes.iter().any(|k| k.contains(&label)),
            "cell {id} panicked but produced no incident class"
        );
    }
    // Persistent offenders (and only they) are quarantined.
    let mut quarantined: Vec<usize> = chaos.quarantined().iter().map(|q| q.cell_id).collect();
    quarantined.sort_unstable();
    assert_eq!(quarantined, persistent, "quarantine list mismatch");
    // Panics and IO faults must not change what the campaign *found*.
    let ordinary: Vec<&String> = classes
        .iter()
        .filter(|k| !k.contains("harness-panic"))
        .collect();
    let reference_keys: Vec<&String> = ref_classes.iter().collect();
    assert_eq!(
        ordinary, reference_keys,
        "chaos must not perturb the ordinary bug-class set"
    );

    // p99 cell latency over the completed (non-quarantined) cells.
    let journal = Checkpoint::in_dir(chaos.config().dir.as_path())
        .load()
        .expect("chaos checkpoint loads");
    let mut lat: Vec<u64> = journal.cells.iter().map(|c| c.elapsed_ms).collect();
    lat.sort_unstable();
    let p99 = lat
        .get((lat.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0);

    println!();
    println!("{:<28} {:>12}", "metric", "value");
    println!("{:<28} {:>12}", "cells survived", stats.cells_done);
    println!("{:<28} {:>12}", "panics caught", stats.panics_caught);
    println!("{:<28} {:>12}", "cell retries", stats.retries);
    println!("{:<28} {:>12}", "cells quarantined", stats.quarantined);
    println!(
        "{:<28} {:>12}",
        "env faults injected",
        sup.env_faults.injected()
    );
    println!("{:<28} {:>12}", "bug classes (ordinary)", ordinary.len());
    println!("{:<28} {:>12}", "p99 cell latency (ms)", p99);
    println!();
    println!(
        "parity check: {} ordinary classes identical to the fault-free run \
         ({} queries vs {})",
        ordinary.len(),
        stats.queries,
        ref_stats.queries
    );

    let json = Json::Obj(vec![
        ("cells_total".to_string(), Json::count(cells_total)),
        ("cells_survived".to_string(), Json::count(stats.cells_done)),
        (
            "panics_caught".to_string(),
            Json::count(stats.panics_caught),
        ),
        ("retries".to_string(), Json::count(stats.retries)),
        ("quarantined".to_string(), Json::count(stats.quarantined)),
        (
            "env_faults_injected".to_string(),
            Json::count(sup.env_faults.injected() as usize),
        ),
        (
            "bug_classes_ordinary".to_string(),
            Json::count(ordinary.len()),
        ),
        (
            "bug_classes_reference".to_string(),
            Json::count(ref_classes.len()),
        ),
        ("p99_cell_ms".to_string(), Json::count(p99 as usize)),
    ]);
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark artifact");
    println!("wrote {out_path}");
}
