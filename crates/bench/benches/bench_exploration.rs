//! End-to-end cost of one TQS iteration (generate → transform → execute all
//! hint sets → verify against ground truth), compared with one baseline
//! iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use tqs_bench::standard_dsg;
use tqs_core::baselines::{run_baseline_on, Baseline, BaselineConfig};
use tqs_core::dsg::DsgDatabase;
use tqs_core::tqs::{TqsConfig, TqsRunner};
use tqs_engine::{Database, DbmsProfile, ProfileId};

fn bench_tqs_iteration(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(200, 5));
    c.bench_function("tqs_one_iteration", |b| {
        b.iter_batched(
            || {
                TqsRunner::with_database(
                    ProfileId::MysqlLike,
                    DbmsProfile::build(ProfileId::MysqlLike),
                    dsg.clone(),
                    TqsConfig { iterations: 1, ..Default::default() },
                )
            },
            |mut runner| runner.run(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_baseline_iteration(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(200, 5));
    c.bench_function("norec_one_iteration", |b| {
        b.iter_batched(
            || Database::new(dsg.db.catalog.clone(), DbmsProfile::build(ProfileId::MysqlLike)),
            |engine| {
                run_baseline_on(
                    Baseline::NoRec,
                    engine,
                    &dsg,
                    &BaselineConfig { iterations: 1, ..Default::default() },
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_tqs_iteration, bench_baseline_iteration);
criterion_main!(benches);
