//! End-to-end cost of one TQS iteration (generate → transform → execute all
//! hint sets → verify against ground truth), compared with one baseline
//! iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use tqs_bench::standard_dsg;
use tqs_core::backend::EngineConnector;
use tqs_core::baselines::{run_baseline_on, Baseline, BaselineConfig};
use tqs_core::dsg::DsgDatabase;
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;

fn bench_tqs_iteration(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(200, 5));
    c.bench_function("tqs_one_iteration", |b| {
        b.iter_batched(
            || {
                TqsSession::builder()
                    .profile(ProfileId::MysqlLike)
                    .dsg(dsg.clone())
                    .config(TqsConfig {
                        iterations: 1,
                        ..Default::default()
                    })
                    .build()
                    .expect("session build")
            },
            |mut session| session.run(),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_baseline_iteration(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(200, 5));
    c.bench_function("norec_one_iteration", |b| {
        b.iter_batched(
            // catalog load happens in the untimed setup so the measurement
            // covers the NoRec oracle, not the catalog clone
            || EngineConnector::connect(ProfileId::MysqlLike, &dsg),
            |mut conn| {
                run_baseline_on(
                    Baseline::NoRec,
                    &mut conn,
                    &dsg,
                    &BaselineConfig {
                        iterations: 1,
                        ..Default::default()
                    },
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_tqs_iteration, bench_baseline_iteration);
criterion_main!(benches);
