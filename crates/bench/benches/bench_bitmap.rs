//! Join bitmap index operations, including the jump-intersection ablation
//! (sparsest-first vs naive ordering) and WAH compression.

use criterion::{criterion_group, criterion_main, Criterion};
use tqs_schema::{jump_intersect, Bitmap, WahBitmap};

fn make(len: usize, every: usize) -> Bitmap {
    let mut b = Bitmap::new(len);
    for i in (0..len).step_by(every) {
        b.set(i, true);
    }
    b
}

fn bench_bitmap_ops(c: &mut Criterion) {
    let dense = make(100_000, 2);
    let sparse = make(100_000, 997);
    c.bench_function("bitmap_and_100k", |b| b.iter(|| dense.and(&sparse)));
    c.bench_function("bitmap_or_100k", |b| b.iter(|| dense.or(&sparse)));
    c.bench_function("bitmap_and_not_100k", |b| b.iter(|| dense.and_not(&sparse)));
}

fn bench_jump_intersection(c: &mut Criterion) {
    let a = make(100_000, 2);
    let b1 = make(100_000, 3);
    let s = make(100_000, 1553);
    c.bench_function("jump_intersect_sparsest_first", |bch| {
        bch.iter(|| jump_intersect(&[&a, &b1, &s]))
    });
    // ablation: naive left-to-right fold without sparsity ordering
    c.bench_function("naive_intersect_in_given_order", |bch| {
        bch.iter(|| a.and(&b1).and(&s))
    });
}

fn bench_wah(c: &mut Criterion) {
    let sparse = make(200_000, 1553);
    c.bench_function("wah_compress_sparse_200k", |b| {
        b.iter(|| WahBitmap::compress(&sparse))
    });
    let compressed = WahBitmap::compress(&sparse);
    c.bench_function("wah_decompress_sparse_200k", |b| {
        b.iter(|| compressed.decompress())
    });
}

criterion_group!(
    benches,
    bench_bitmap_ops,
    bench_jump_intersection,
    bench_wah
);
criterion_main!(benches);
