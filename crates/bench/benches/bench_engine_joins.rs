//! Simulated-DBMS join execution across the physical algorithms the hints can
//! force (the cost of one transformed-query execution).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tqs_bench::standard_dsg;
use tqs_core::dsg::DsgDatabase;
use tqs_engine::{Database, DbmsProfile, ProfileId};
use tqs_sql::parser::parse_stmt;

fn bench_join_algorithms(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(400, 7));
    let goods = dsg.db.table_with_pk("goodsId").unwrap().name.clone();
    let names = dsg.db.table_with_pk("goodsName").unwrap().name.clone();
    let engine = Database::new(
        dsg.db.catalog.clone(),
        DbmsProfile::pristine(ProfileId::MysqlLike),
    );
    let mut group = c.benchmark_group("engine_join");
    for hint in ["HASH_JOIN", "MERGE_JOIN", "NL_JOIN", "INDEX_JOIN"] {
        let sql = format!(
            "SELECT /*+ {hint}({goods}, {names}) */ T1.orderId, {names}.price FROM T1 \
             JOIN {goods} ON T1.goodsId = {goods}.goodsId \
             JOIN {names} ON {goods}.goodsName = {names}.goodsName"
        );
        let stmt = parse_stmt(&sql).unwrap();
        group.bench_with_input(BenchmarkId::new("three_way", hint), &stmt, |b, s| {
            b.iter(|| engine.execute(s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_algorithms);
criterion_main!(benches);
