//! KQE graph index: embedding, insertion and coverage queries as the explored
//! history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tqs_graph::embedding::embed_graph;
use tqs_graph::{GraphIndex, LabeledGraph};

fn chain(n: usize, label: &str) -> LabeledGraph {
    let mut g = LabeledGraph::default();
    let ids: Vec<usize> = (0..n).map(|_| g.add_node("table")).collect();
    for i in 1..n {
        g.add_edge(ids[i - 1], ids[i], label);
    }
    g
}

fn bench_embedding(c: &mut Criterion) {
    let g = chain(5, "inner join");
    c.bench_function("embed_query_graph", |b| b.iter(|| embed_graph(&g, 2)));
}

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("kqe_coverage");
    for size in [100usize, 1_000, 10_000] {
        let mut gi = GraphIndex::new();
        let labels = ["inner join", "left outer join", "semi join", "anti join"];
        for i in 0..size {
            let g = chain(2 + i % 4, labels[i % labels.len()]);
            gi.insert(&g, embed_graph(&g, 2));
        }
        let probe = embed_graph(&chain(3, "inner join"), 2);
        group.bench_with_input(BenchmarkId::from_parameter(size), &gi, |b, gi| {
            b.iter(|| gi.coverage(&probe, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embedding, bench_coverage);
criterion_main!(benches);
