//! Micro-benchmarks for the DSG data layer: FD discovery and 3NF
//! normalization (the setup cost of every testing session).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tqs_schema::{normalize, FdDiscoveryConfig, FdSet};
use tqs_storage::widegen::{shopping_orders, tpch_like, ShoppingConfig, TpchLikeConfig};

fn bench_fd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_discovery");
    for rows in [200usize, 800] {
        let wide = shopping_orders(&ShoppingConfig {
            n_rows: rows,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("shopping", rows), &wide, |b, w| {
            b.iter(|| FdSet::discover(w, &FdDiscoveryConfig::default()))
        });
    }
    let wide = tpch_like(&TpchLikeConfig {
        n_rows: 400,
        ..Default::default()
    });
    group.bench_function("tpch_like_400", |b| {
        b.iter(|| FdSet::discover(&wide, &FdDiscoveryConfig::default()))
    });
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let wide = shopping_orders(&ShoppingConfig {
        n_rows: 600,
        ..Default::default()
    });
    let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
    c.bench_function("normalize_shopping_600", |b| {
        b.iter(|| normalize(wide.clone(), &fds))
    });
}

criterion_group!(benches, bench_fd_discovery, bench_normalize);
criterion_main!(benches);
