//! Ground-truth recovery cost (bitmap fold + wide-table retrieval + reference
//! evaluation) for two- and three-way joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tqs_bench::standard_dsg;
use tqs_core::dsg::DsgDatabase;
use tqs_schema::GroundTruthEvaluator;
use tqs_sql::parser::parse_stmt;

fn bench_ground_truth(c: &mut Criterion) {
    let dsg = DsgDatabase::build(&standard_dsg(400, 3));
    let goods = dsg.db.table_with_pk("goodsId").unwrap().name.clone();
    let names = dsg.db.table_with_pk("goodsName").unwrap().name.clone();
    let users = dsg.db.table_with_pk("userId").unwrap().name.clone();
    let gt = GroundTruthEvaluator::new(&dsg.db);
    let queries = [
        ("two_way", format!("SELECT {goods}.goodsName, {names}.price FROM {goods} JOIN {names} ON {goods}.goodsName = {names}.goodsName")),
        ("three_way", format!("SELECT T1.orderId FROM T1 JOIN {goods} ON T1.goodsId = {goods}.goodsId LEFT OUTER JOIN {users} ON T1.userId = {users}.userId")),
        ("anti_join", format!("SELECT T1.orderId FROM T1 ANTI JOIN {goods} ON T1.goodsId = {goods}.goodsId")),
    ];
    let mut group = c.benchmark_group("ground_truth");
    for (name, sql) in &queries {
        let stmt = parse_stmt(sql).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &stmt, |b, s| {
            b.iter(|| gt.evaluate(s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ground_truth);
criterion_main!(benches);
