//! # tqs
//!
//! Facade crate for the TQS workspace (Transformed Query Synthesis, a
//! reproduction of the SIGMOD 2023 paper on detecting logic bugs in join
//! optimization). It re-exports every workspace crate under one roof and
//! hosts the repository-level examples and integration tests.
//!
//! Start with [`tqs_core::tqs::TqsSession`] and the
//! [`tqs_core::backend::DbmsConnector`] trait; the README walks through both.

pub use tqs_core;
pub use tqs_engine;
pub use tqs_graph;
pub use tqs_schema;
pub use tqs_sql;
pub use tqs_storage;
