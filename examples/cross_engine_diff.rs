//! Cross-engine differential testing: hunt for logic bugs in the faulty
//! row-engine build by comparing every transformed query against the
//! *columnar* engine — no ground-truth machinery involved. The two engines
//! carry disjoint fault complements, so a pristine columnar build acts as a
//! reference; any divergence implicates the row engine's Table 4 faults, and
//! the oracle-driven minimizer shrinks a reproducer without knowing which
//! oracle produced it.
//!
//! Run with: `cargo run --example cross_engine_diff`

use tqs_core::backend::EngineConnector;
use tqs_core::bugs::minimize_with_oracle;
use tqs_core::dsg::{DsgConfig, DsgDatabase, QueryGenerator, UniformScorer, WideSource};
use tqs_core::oracle::{DifferentialOracle, Oracle, OracleVerdict};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_sql::render::render_stmt;
use tqs_storage::widegen::ShoppingConfig;

fn main() {
    let dsg = DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.03,
            seed: 7,
            max_injections: 24,
        }),
    });

    // The build under test: the faulty row engine.
    let mut conn = EngineConnector::connect(ProfileId::MysqlLike, &dsg);
    // The reference: a pristine columnar build of the same dialect, loaded
    // with the same catalog, owned by the oracle.
    let mut oracle = DifferentialOracle::new(EngineConnector::connect_columnar_pristine(
        ProfileId::MysqlLike,
        &dsg,
    ));
    println!("oracle: {}", oracle.name());

    let mut generator = QueryGenerator::new(Default::default());
    let mut found = 0;
    for i in 0..400 {
        let stmt = generator.generate(&dsg, None, &UniformScorer);
        let OracleVerdict::Bugs(reports) = oracle.check(&stmt, &mut conn) else {
            continue;
        };
        found += reports.len();
        let bug = &reports[0];
        println!(
            "\nquery #{i}: {} divergence(s), hint set `{}`, root cause {:?}",
            reports.len(),
            bug.hint_label,
            bug.fired
        );
        println!("  {}", render_stmt(&stmt));
        let minimized = minimize_with_oracle(&stmt, &mut oracle, &mut conn);
        println!("  minimized: {}", render_stmt(&minimized));
        if found >= 5 {
            break;
        }
    }
    println!("\n{found} cross-engine divergences found");
}
