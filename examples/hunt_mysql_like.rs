//! A longer bug hunt against every simulated DBMS profile, reporting the
//! per-profile bug counts and bug types — a miniature Table 4.
//!
//! Run with: `cargo run --release --example hunt_mysql_like`

use tqs_core::backend::EngineConnector;
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn main() {
    let iterations: usize = std::env::var("TQS_ITER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    for profile in ProfileId::ALL {
        let dsg_cfg = DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 250,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 11,
                max_injections: 32,
            }),
        };
        let mut session = TqsSession::builder()
            .connector(EngineConnector::faulty(profile))
            .dsg_config(&dsg_cfg)
            .config(TqsConfig {
                iterations,
                ..Default::default()
            })
            .build()
            .expect("session build");
        let stats = session.run();
        println!(
            "{:<14} bugs={:<4} types={:<3} diversity={:<6} ({} queries)",
            stats.dbms,
            stats.bug_count,
            stats.bug_type_count,
            stats.diversity,
            stats.queries_generated
        );
        for ty in session.bugs.bug_types() {
            println!("    type: {ty}");
        }
    }
}
