//! Quickstart: build a testing database from the shopping-order wide table,
//! point TQS at the (faulty) MySQL-like simulated DBMS, run a short testing
//! session and print every detected logic bug.
//!
//! Run with: `cargo run --example quickstart`

use tqs_core::backend::EngineConnector;
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn main() {
    let dsg_cfg = DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.03,
            seed: 7,
            max_injections: 24,
        }),
    };
    let mut session = TqsSession::builder()
        .connector(EngineConnector::faulty(ProfileId::MysqlLike))
        .dsg_config(&dsg_cfg)
        .config(TqsConfig {
            iterations: 150,
            minimize: true,
            ..Default::default()
        })
        .build()
        .expect("the engine connector accepts any DSG catalog");

    println!("testing {}", session.dbms_name());
    println!("schema tables: {:?}", session.dsg.db.table_names());
    println!("injected noise records: {}", session.dsg.noise.len());

    let stats = session.run();
    println!(
        "\n{} queries generated, {} executed, {} skipped",
        stats.queries_generated, stats.queries_executed, stats.queries_skipped
    );
    println!(
        "query-graph diversity (isomorphic sets): {}",
        stats.diversity
    );
    println!(
        "bugs: {}  bug types: {}\n",
        stats.bug_count, stats.bug_type_count
    );

    for (i, bug) in session.bugs.reports.iter().enumerate() {
        println!(
            "--- bug #{} ({:?}, hint set `{}`) ---",
            i + 1,
            bug.oracle,
            bug.hint_label
        );
        println!("{}", bug.transformed_sql);
        println!(
            "expected {} rows, observed {} rows; root cause: {:?}",
            bug.expected_rows, bug.observed_rows, bug.fired
        );
        if let Some(min) = &bug.minimized_sql {
            println!("minimized: {min}");
        }
        println!();
    }
}
