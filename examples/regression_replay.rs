//! Regression replay: re-verify a bug corpus against engine builds and
//! compact it.
//!
//! Walks the full regression loop: hunt a small campaign on a seeded-fault
//! build, then re-verify every persisted class against (a) the same faulty
//! build — every class must still fail — and (b) the fault-free build of the
//! same profile — every class must come back fixed, the situation after the
//! developers patched every root cause. Finally compact the corpus: one
//! minimized representative per class that still fails, fixed classes
//! garbage-collected.
//!
//! Run with: `cargo run --release --example regression_replay`

use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode,
    ReverifyCampaign, ReverifyConfig, Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn main() {
    let dir = std::env::temp_dir().join(format!("tqs-reverify-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CampaignConfig {
        dir: dir.clone(),
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 9,
                max_injections: 12,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 50,
        seed: 31337,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    };

    // Step 1: hunt. The corpus accumulates one entry per bug class, each
    // with a minimized reproducer and a replayable witness trace.
    let mut campaign = Campaign::new(cfg.clone()).expect("fresh campaign directory");
    campaign.run().expect("hunt");
    println!(
        "hunted {} bug classes into {}",
        campaign.class_keys().len(),
        dir.display()
    );

    // Step 2: re-verify against the faulty build (nothing fixed yet) and
    // the pristine build (everything fixed).
    let reverify = ReverifyCampaign::load(ReverifyConfig {
        campaign: cfg.clone(),
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: 2,
    })
    .expect("load corpus");
    let (report, stats) = reverify.run();
    println!(
        "\nre-verified {} classes × {} builds in {:.2}s:",
        stats.entries,
        stats.builds,
        stats.elapsed.as_secs_f64()
    );
    for v in &report.verdicts {
        println!(
            "  [{:8}] {:13} replay={} live={}  {}",
            v.build.label(),
            v.status.label(),
            v.replay_reproduced,
            v.live_failing,
            v.class_key
        );
    }

    // Step 3: compact. Classes that still fail anywhere survive with one
    // representative; a class fixed on *every* checked build would be
    // garbage-collected (here everything still fails on the faulty build,
    // so the corpus keeps its full class set).
    let corpus = Corpus::in_dir(&dir);
    let first = corpus
        .compact(|key| report.retain_class(key, false))
        .expect("compact");
    let bytes = std::fs::read(corpus.path()).expect("read compacted corpus");
    let second = corpus
        .compact(|key| report.retain_class(key, false))
        .expect("compact again");
    assert_eq!(
        bytes,
        std::fs::read(corpus.path()).expect("re-read"),
        "compaction is idempotent"
    );
    println!(
        "\ncompaction: kept {} classes (second pass byte-identical: kept {}, dropped {})",
        first.kept,
        second.kept,
        second.duplicates_dropped + second.classes_dropped
    );

    // A corpus re-verified only against the fixed build garbage-collects
    // completely — found bugs stayed found until the fixes landed.
    let (fixed_report, _) = ReverifyCampaign::load(ReverifyConfig {
        campaign: cfg,
        builds: vec![BuildSpec::Pristine],
        workers: 2,
    })
    .expect("reload corpus")
    .run();
    let gc = corpus
        .compact(|key| fixed_report.retain_class(key, false))
        .expect("garbage-collect");
    println!(
        "after the fixes land: {} classes kept, {} retired — regression corpus clean",
        gc.kept, gc.classes_dropped
    );

    std::fs::remove_dir_all(&dir).expect("clean up the example directory");
}
