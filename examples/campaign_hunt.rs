//! Start, kill and resume a sharded hunt campaign.
//!
//! Demonstrates the campaign lifecycle end to end: a fresh campaign over a
//! (shard × profile × oracle × engine) cell grid, a bounded first session (standing
//! in for a killed process), a resume that picks up the missing cells, and
//! the triage/corpus state that survives on disk throughout.
//!
//! Run with: `cargo run --release --example campaign_hunt`

use tqs_campaign::{Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode, Workload};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn main() {
    let dir = std::env::temp_dir().join(format!("tqs-campaign-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The campaign identity: seed, shard count, cell budget, profiles and
    // oracles. Everything below is reproducible from this block.
    let cfg = CampaignConfig {
        dir: dir.clone(),
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 150,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 21,
                max_injections: 16,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike, ProfileId::TidbLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Disk],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 60,
        seed: 2024,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    };

    // Session 1: drain only part of the grid, then "die".
    let mut first = Campaign::new(CampaignConfig {
        max_cells_per_run: Some(2),
        ..cfg.clone()
    })
    .expect("fresh campaign directory");
    println!(
        "session 1: {} cells queued in {}",
        first.cells_total(),
        dir.display()
    );
    let stats = first.run().expect("bounded first session");
    println!(
        "session 1: drained {}/{} cells, {} queries ({:.0}/sec), {} raw reports -> {} classes",
        first.cells_done(),
        first.cells_total(),
        stats.queries,
        stats.queries_per_sec(),
        stats.raw_reports,
        stats.bug_classes,
    );
    drop(first); // the kill: nothing survives but the campaign directory

    // Session 2: resume from the journal and finish the grid.
    let mut second = Campaign::resume(cfg).expect("resume from checkpoint");
    println!(
        "session 2: resumed with {}/{} cells done, {} classes known",
        second.cells_done(),
        second.cells_total(),
        second.class_keys().len(),
    );
    let stats = second.run().expect("resumed session");
    assert!(second.is_complete());
    println!(
        "session 2: campaign complete — {} classes total (dedup ratio this session: {:.1})",
        second.class_keys().len(),
        stats.dedup_ratio(),
    );

    // The corpus holds one minimized representative per class, each with a
    // replayable witness trace.
    let entries = Corpus::in_dir(&dir).load().expect("load corpus");
    println!("\ncorpus: {} entries, e.g.:", entries.len());
    for entry in entries.iter().take(3) {
        println!(
            "  [{}] {} — minimized: {}",
            entry.report.bug_type(),
            entry.report.dbms,
            entry
                .report
                .minimized_sql
                .as_deref()
                .unwrap_or("(not minimized)"),
        );
    }

    std::fs::remove_dir_all(&dir).expect("clean up the example directory");
}
