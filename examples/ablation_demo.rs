//! The Table 5 ablation on one profile: full TQS vs TQS!Noise vs TQS!GT vs
//! TQS!KQE, reporting diversity and bug counts.
//!
//! Run with: `cargo run --release --example ablation_demo`

use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn run(label: &str, noise: bool, use_gt: bool, use_kqe: bool, iterations: usize) {
    let dsg_cfg = DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: if noise {
            Some(NoiseConfig {
                epsilon: 0.04,
                seed: 19,
                max_injections: 24,
            })
        } else {
            None
        },
    };
    let mut session = TqsSession::builder()
        .profile(ProfileId::MysqlLike)
        .dsg_config(&dsg_cfg)
        .config(TqsConfig {
            iterations,
            use_ground_truth: use_gt,
            use_kqe,
            ..Default::default()
        })
        .build()
        .expect("session build");
    let stats = session.run();
    println!(
        "{:<10} diversity={:<6} bugs={:<4} types={}",
        label, stats.diversity, stats.bug_count, stats.bug_type_count
    );
}

fn main() {
    let iterations: usize = std::env::var("TQS_ITER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    run("TQS", true, true, true, iterations);
    run("TQS!Noise", false, true, true, iterations);
    run("TQS!GT", true, false, true, iterations);
    run("TQS!KQE", true, true, false, iterations);
}
