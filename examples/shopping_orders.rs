//! Walk through the DSG data layer on the paper's running example (Figure 3):
//! wide table → FD discovery → 3NF schema → RowID map → join bitmap index →
//! noise injection → ground truth of Example 3.5.
//!
//! Run with: `cargo run --example shopping_orders`

use tqs_schema::{
    inject_noise, normalize, FdDiscoveryConfig, FdSet, GroundTruthEvaluator, NoiseConfig,
};
use tqs_sql::parser::parse_stmt;
use tqs_storage::widegen::{shopping_orders, ShoppingConfig};

fn main() {
    let wide = shopping_orders(&ShoppingConfig {
        n_rows: 120,
        ..Default::default()
    });
    println!(
        "wide table: {} rows, {} attribute columns",
        wide.row_count(),
        wide.attr_names().len()
    );

    let fds = FdSet::discover(&wide, &FdDiscoveryConfig::default());
    println!("\ndiscovered FDs:");
    for fd in &fds.minimal_cover().fds {
        println!("  {fd}");
    }

    let mut db = normalize(wide, &fds);
    println!("\nschema tables:");
    for m in &db.metas {
        let t = db.catalog.table(&m.name).unwrap();
        println!(
            "  {} (pk: {:?}, {} rows){}",
            m.name,
            m.implicit_pk,
            t.row_count(),
            if m.is_base { "  [base]" } else { "" }
        );
        println!("{}", t.create_table_sql());
    }

    let noise = inject_noise(
        &mut db,
        &NoiseConfig {
            epsilon: 0.05,
            seed: 3,
            max_injections: 12,
        },
    );
    println!("\ninjected {} noise records:", noise.len());
    for n in &noise {
        println!(
            "  {:?} {} in {}.{} row {}",
            n.kind, n.value, n.table, n.column, n.schema_row
        );
    }

    // Example 3.5 style query: price of 'flower' goods through a join.
    let goods = db.table_with_pk("goodsId").unwrap().name.clone();
    let names = db.table_with_pk("goodsName").unwrap().name.clone();
    let sql = format!(
        "SELECT {names}.price FROM {goods} INNER JOIN {names} ON {goods}.goodsName = {names}.goodsName \
         WHERE {goods}.goodsName = 'flower'"
    );
    let stmt = parse_stmt(&sql).unwrap();
    let gt = GroundTruthEvaluator::new(&db).evaluate(&stmt).unwrap();
    println!("\nquery: {sql}");
    println!("ground truth:\n{}", gt.result.pretty());
}
