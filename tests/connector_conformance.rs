//! Every shipped `DbmsConnector` implementation must pass the shared
//! conformance suite: plan invariance and ground-truth soundness on pristine
//! builds, observable misbehavior on fault-seeded builds — both directly and
//! through the recording proxy (which must be transparent).

use tqs_core::backend::{DbmsConnector, EngineConnector, RecordingConnector, TraceEvent};
use tqs_core::conformance::{assert_connector_conformance, assert_dml_conformance, BuildKind};
use tqs_engine::ProfileId;

#[test]
fn engine_connector_pristine_builds_conform() {
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::pristine(profile);
        assert_connector_conformance(&mut conn, BuildKind::Pristine);
    }
}

#[test]
fn engine_connector_seeded_builds_conform() {
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::faulty(profile);
        assert_connector_conformance(&mut conn, BuildKind::Seeded);
    }
}

#[test]
fn columnar_connector_pristine_builds_conform() {
    // The second engine must satisfy the same contract as the first: on a
    // fault-free columnar build every hinted plan matches the ground truth.
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::columnar_pristine(profile);
        assert_connector_conformance(&mut conn, BuildKind::Pristine);
    }
}

#[test]
fn columnar_connector_seeded_builds_conform() {
    // The columnar fault complement must be observable through the trait.
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::columnar(profile);
        assert_connector_conformance(&mut conn, BuildKind::Seeded);
    }
}

#[test]
fn disk_connector_pristine_builds_conform() {
    // The third engine executes over the B+tree page store; fault-free it
    // must satisfy the exact contract of the in-memory engines.
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::disk_pristine(profile);
        assert_connector_conformance(&mut conn, BuildKind::Pristine);
    }
}

#[test]
fn disk_connector_seeded_builds_conform() {
    // The storage-layer fault complement must be observable through the
    // trait, exactly like the row and columnar complements.
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::disk(profile);
        assert_connector_conformance(&mut conn, BuildKind::Seeded);
    }
}

#[test]
fn replay_connector_of_a_recorded_disk_session_conforms() {
    // A recorded disk session round-trips through the replay backend: the
    // witness trace stands in for the page store entirely.
    let mut rec = RecordingConnector::new(EngineConnector::disk(ProfileId::MysqlLike));
    assert_connector_conformance(&mut rec, BuildKind::Seeded);
    let mut replay = rec.replay();
    assert_connector_conformance(&mut replay, BuildKind::Seeded);
}

#[test]
fn replay_connector_of_a_recorded_pristine_session_conforms() {
    // Record one full conformance run, then replay it without the engine:
    // the suite's seeded generator reproduces the same statements, so the
    // replay backend must pass the identical contract.
    let mut rec = RecordingConnector::new(EngineConnector::pristine(ProfileId::MysqlLike));
    assert_connector_conformance(&mut rec, BuildKind::Pristine);
    let mut replay = rec.replay();
    assert_connector_conformance(&mut replay, BuildKind::Pristine);
}

#[test]
fn replay_connector_of_a_recorded_seeded_session_conforms() {
    let mut rec = RecordingConnector::new(EngineConnector::faulty(ProfileId::TidbLike));
    assert_connector_conformance(&mut rec, BuildKind::Seeded);
    let mut replay = rec.replay();
    assert_connector_conformance(&mut replay, BuildKind::Seeded);
}

#[test]
fn recording_connector_is_a_transparent_pristine_proxy() {
    let mut conn = RecordingConnector::new(EngineConnector::pristine(ProfileId::MysqlLike));
    assert_connector_conformance(&mut conn, BuildKind::Pristine);
    // the proxy observed the whole session
    assert!(
        conn.trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::LoadCatalog { .. })),
        "trace must include the catalog load"
    );
    assert!(
        conn.trace().len() > 100,
        "trace too short: {}",
        conn.trace().len()
    );
}

#[test]
fn recording_connector_is_a_transparent_seeded_proxy() {
    let mut conn = RecordingConnector::new(EngineConnector::faulty(ProfileId::TidbLike));
    assert_connector_conformance(&mut conn, BuildKind::Seeded);
    // the trace carries the fault provenance the seeded build produced
    let fired_in_trace = conn.trace().iter().any(
        |e| matches!(e, TraceEvent::Statement { outcome: Ok(out), .. } if !out.fired.is_empty()),
    );
    assert!(
        fired_in_trace,
        "seeded faults must be visible in the recorded trace"
    );
    assert!(conn.replay_log().contains("EXEC"));
}

#[test]
fn engine_connectors_pass_dml_conformance_when_pristine() {
    // The DML section of the contract: visibility basics plus a clean pass
    // of the mutation oracle, on fault-free builds of all three engines.
    for profile in ProfileId::ALL {
        for mut conn in [
            EngineConnector::pristine(profile),
            EngineConnector::columnar_pristine(profile),
            EngineConnector::disk_pristine(profile),
        ] {
            assert_dml_conformance(&mut conn, BuildKind::Pristine);
        }
    }
}

#[test]
fn engine_connectors_pass_dml_conformance_when_seeded() {
    // Every seeded build carries the shared DML fault complement, and the
    // suite requires it to misbehave observably — while still honoring the
    // fault-dodging visibility basics.
    for profile in ProfileId::ALL {
        for mut conn in [
            EngineConnector::faulty(profile),
            EngineConnector::columnar(profile),
            EngineConnector::disk(profile),
        ] {
            assert_dml_conformance(&mut conn, BuildKind::Seeded);
        }
    }
}

#[test]
fn replay_connector_of_a_recorded_dml_session_conforms() {
    // DML statements key into the witness trace under ("dml", rendered
    // statement); a recorded mutation session must replay without the
    // engine, faults and all.
    let mut rec = RecordingConnector::new(EngineConnector::faulty(ProfileId::MysqlLike));
    assert_dml_conformance(&mut rec, BuildKind::Seeded);
    let mut replay = rec.replay();
    assert_dml_conformance(&mut replay, BuildKind::Seeded);
}

#[test]
fn conformance_catches_a_connector_that_hides_misbehavior() {
    // A deliberately broken proxy that launders every fault away — the suite
    // must reject it on a seeded build.
    struct FaultHidingConnector(EngineConnector);

    impl DbmsConnector for FaultHidingConnector {
        fn info(&self) -> tqs_core::backend::ConnectorInfo {
            self.0.info()
        }

        fn load_catalog(
            &mut self,
            catalog: &tqs_storage::Catalog,
        ) -> Result<(), tqs_core::backend::ConnectorError> {
            self.0.load_catalog(catalog)
        }

        fn execute_with_hints(
            &mut self,
            stmt: &tqs_sql::ast::SelectStmt,
            _hints: &tqs_sql::hints::HintSet,
        ) -> Result<tqs_core::backend::SqlOutcome, tqs_core::backend::ConnectorError> {
            // always execute the default plan and strip the provenance
            let mut out = self.0.execute(stmt)?;
            out.fired.clear();
            Ok(out)
        }

        fn explain(
            &mut self,
            stmt: &tqs_sql::ast::SelectStmt,
        ) -> Result<String, tqs_core::backend::ConnectorError> {
            self.0.explain(stmt)
        }
    }

    let mut conn = FaultHidingConnector(EngineConnector::pristine(ProfileId::XdbLike));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        assert_connector_conformance(&mut conn, BuildKind::Seeded);
    }));
    assert!(
        outcome.is_err(),
        "the suite must reject a connector that never misbehaves"
    );
}
