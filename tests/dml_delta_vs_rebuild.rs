//! Delta-vs-rebuild: the proof obligation behind the mutation ground truth.
//!
//! [`MutationGroundTruth`] maintains its state *incrementally* — every
//! mutation applies a delta, rollback reverse-applies an undo log, and the
//! committed view is derived by inverse application. This harness checks it
//! against an independent reference implemented right here in the test:
//! `NaiveDb` re-evaluates each statement functionally (building fresh row
//! vectors) and implements transactions by *cloning the whole state at
//! BEGIN* and restoring the clone on ROLLBACK — deliberately a different
//! mechanism from the undo log, so a bookkeeping bug in either side shows up
//! as a divergence.
//!
//! After **every statement** of a generated program we assert:
//!
//! * the incrementally-maintained live state is byte-identical to a
//!   from-scratch replay of the statement prefix (`NaiveDb::rebuild`),
//! * the undo-derived committed view equals the snapshot-at-BEGIN committed
//!   view, and
//! * both sides agree on statement success and `rows_affected`.
//!
//! A second property runs the same programs through the mutation oracle on
//! pristine builds of all three engines (row, columnar, disk) and requires a
//! clean pass.

use proptest::prelude::*;
use std::sync::OnceLock;
use tqs_core::backend::EngineConnector;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::mutation::{DmlGenConfig, DmlGenerator, DmlOracle, MutationGroundTruth};
use tqs_core::oracle::OracleVerdict;
use tqs_engine::ProfileId;
use tqs_sql::ast::{DeleteStmt, DmlStmt, InsertStmt, UpdateStmt};
use tqs_sql::eval::{eval_expr, eval_predicate, NoSubqueries, SliceRow};
use tqs_sql::render::render_program;
use tqs_sql::value::Value;
use tqs_storage::Catalog;

fn shared_dsg() -> &'static DsgDatabase {
    static DSG: OnceLock<DsgDatabase> = OnceLock::new();
    DSG.get_or_init(|| {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(tqs_storage::widegen::ShoppingConfig {
                n_rows: 120,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        })
    })
}

type Rows = Vec<(u64, Vec<Value>)>;

/// The in-test reference: same DML semantics as [`MutationGroundTruth`],
/// different machinery. Statements rebuild row vectors functionally (which
/// makes them atomic for free), and transactions are whole-state snapshots
/// instead of undo logs. Row identities mirror the ground truth's contract:
/// ids are assigned 1.. globally in catalog load order, inserts take the
/// next id, and ids are never reused — not even after a rollback.
struct NaiveDb {
    schema: Catalog,
    tables: Vec<(String, Rows)>,
    next_id: u64,
    /// Deep copy of `tables` taken at BEGIN; ROLLBACK restores it wholesale.
    /// `next_id` is deliberately *not* part of the snapshot: identities
    /// consumed by a rolled-back insert stay consumed.
    txn_snapshot: Option<Vec<(String, Rows)>>,
}

impl NaiveDb {
    fn new(catalog: &Catalog) -> Self {
        let mut next_id = 0u64;
        let tables = catalog
            .iter()
            .map(|t| {
                let rows = t
                    .rows
                    .iter()
                    .map(|r| {
                        next_id += 1;
                        (next_id, r.values.clone())
                    })
                    .collect();
                (t.name.clone(), rows)
            })
            .collect();
        NaiveDb {
            schema: catalog.clone(),
            tables,
            next_id,
            txn_snapshot: None,
        }
    }

    /// From-scratch replay of a statement prefix: fresh state, apply every
    /// statement, ignore the ones that error (they leave state untouched).
    fn rebuild(catalog: &Catalog, prefix: &[DmlStmt]) -> Self {
        let mut db = NaiveDb::new(catalog);
        for stmt in prefix {
            let _ = db.apply(stmt);
        }
        db
    }

    fn live(&self) -> Vec<(String, Rows)> {
        self.tables.clone()
    }

    /// The committed view under snapshot semantics: whatever was live at
    /// BEGIN, or the live state itself outside a transaction.
    fn committed(&self) -> Vec<(String, Rows)> {
        self.txn_snapshot
            .clone()
            .unwrap_or_else(|| self.tables.clone())
    }

    fn table_idx(&self, name: &str) -> Result<usize, ()> {
        self.tables
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
            .ok_or(())
    }

    fn scope_cols(schema: &tqs_storage::Table) -> Vec<(String, String)> {
        schema
            .columns
            .iter()
            .map(|c| (schema.name.clone(), c.name.clone()))
            .collect()
    }

    fn apply(&mut self, stmt: &DmlStmt) -> Result<usize, ()> {
        match stmt {
            DmlStmt::Begin => {
                if self.txn_snapshot.is_some() {
                    return Err(());
                }
                self.txn_snapshot = Some(self.tables.clone());
                Ok(0)
            }
            DmlStmt::Commit => self.txn_snapshot.take().map(|_| 0).ok_or(()),
            DmlStmt::Rollback => match self.txn_snapshot.take() {
                Some(snap) => {
                    self.tables = snap;
                    Ok(0)
                }
                None => Err(()),
            },
            DmlStmt::Insert(i) => self.apply_insert(i),
            DmlStmt::Update(u) => self.apply_update(u),
            DmlStmt::Delete(d) => self.apply_delete(d),
        }
    }

    fn apply_insert(&mut self, stmt: &InsertStmt) -> Result<usize, ()> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self.schema.table(&stmt.table).ok_or(())?;
        let mut col_indices = Vec::with_capacity(stmt.columns.len());
        for c in &stmt.columns {
            col_indices.push(schema.column_index(c).ok_or(())?);
        }
        let scope = SliceRow::new(&[], &[]);
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for exprs in &stmt.rows {
            let mut values = vec![Value::Null; schema.columns.len()];
            for (ci, e) in col_indices.iter().zip(exprs) {
                values[*ci] = eval_expr(e, &scope, &NoSubqueries).map_err(|_| ())?;
            }
            for (v, c) in values.iter().zip(&schema.columns) {
                if !c.ty.admits(v) {
                    return Err(());
                }
            }
            rows.push(values);
        }
        let n = rows.len();
        for values in rows {
            self.next_id += 1;
            let id = self.next_id;
            self.tables[ti].1.push((id, values));
        }
        Ok(n)
    }

    fn apply_update(&mut self, stmt: &UpdateStmt) -> Result<usize, ()> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self.schema.table(&stmt.table).ok_or(())?;
        let cols = Self::scope_cols(schema);
        let mut set_cols = Vec::with_capacity(stmt.set.len());
        for a in &stmt.set {
            set_cols.push((schema.column_index(&a.column).ok_or(())?, &a.value));
        }
        let mut n = 0usize;
        let mut new_rows = Vec::with_capacity(self.tables[ti].1.len());
        for (id, values) in &self.tables[ti].1 {
            let scope = SliceRow::new(&cols, values);
            let matched = match &stmt.where_clause {
                None => true,
                Some(p) => eval_predicate(p, &scope, &NoSubqueries).map_err(|_| ())? == Some(true),
            };
            if matched {
                n += 1;
                let mut new = values.clone();
                for (ci, e) in &set_cols {
                    let v = eval_expr(e, &scope, &NoSubqueries).map_err(|_| ())?;
                    if !schema.columns[*ci].ty.admits(&v) {
                        return Err(());
                    }
                    new[*ci] = v;
                }
                new_rows.push((*id, new));
            } else {
                new_rows.push((*id, values.clone()));
            }
        }
        self.tables[ti].1 = new_rows;
        Ok(n)
    }

    fn apply_delete(&mut self, stmt: &DeleteStmt) -> Result<usize, ()> {
        let ti = self.table_idx(&stmt.table)?;
        let schema = self.schema.table(&stmt.table).ok_or(())?;
        let cols = Self::scope_cols(schema);
        let mut n = 0usize;
        let mut kept = Vec::with_capacity(self.tables[ti].1.len());
        for (id, values) in &self.tables[ti].1 {
            let scope = SliceRow::new(&cols, values);
            let doomed = match &stmt.where_clause {
                None => true,
                Some(p) => eval_predicate(p, &scope, &NoSubqueries).map_err(|_| ())? == Some(true),
            };
            if doomed {
                n += 1;
            } else {
                kept.push((*id, values.clone()));
            }
        }
        self.tables[ti].1 = kept;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every statement of a random DML + transaction program, the
    /// delta-maintained ground truth is byte-identical to a from-scratch
    /// rebuild, and its inverse-derived committed view matches the
    /// snapshot-based one.
    #[test]
    fn delta_ground_truth_matches_from_scratch_rebuild(seed in 0u64..10_000) {
        let dsg = shared_dsg();
        let catalog = &dsg.db.catalog;
        let mut generator = DmlGenerator::new(DmlGenConfig { seed, ..Default::default() });
        let program = generator.generate_program(dsg);
        let rendered = render_program(&program);

        let mut gt = MutationGroundTruth::new(catalog);
        let mut naive = NaiveDb::new(catalog);
        for (k, stmt) in program.iter().enumerate() {
            let expected = gt.apply(stmt);
            let observed = naive.apply(stmt);
            prop_assert_eq!(
                expected.is_ok(),
                observed.is_ok(),
                "statement {} of program disagreed on success (gt: {:?})\n{}",
                k, expected, rendered
            );
            if let (Ok(a), Ok(b)) = (&expected, &observed) {
                prop_assert_eq!(
                    a, b,
                    "rows_affected diverged at statement {} of\n{}", k, rendered
                );
            }
            prop_assert_eq!(
                gt.in_txn(),
                naive.txn_snapshot.is_some(),
                "transaction state diverged at statement {} of\n{}", k, rendered
            );
            // Live state: delta-maintained == running reference == rebuilt
            // from scratch over the prefix.
            prop_assert_eq!(
                gt.snapshot(),
                naive.live(),
                "live state diverged at statement {} of\n{}", k, rendered
            );
            prop_assert_eq!(
                gt.snapshot(),
                NaiveDb::rebuild(catalog, &program[..=k]).live(),
                "delta state != from-scratch rebuild at statement {} of\n{}", k, rendered
            );
            // Committed view: undo reverse-application == snapshot-at-BEGIN.
            for (name, rows) in naive.committed() {
                prop_assert_eq!(
                    gt.committed_rows(&name).unwrap(),
                    rows,
                    "committed view of {} diverged at statement {} of\n{}", name, k, rendered
                );
            }
        }
        // The generator closes every transaction block.
        prop_assert!(!gt.in_txn());
    }

    /// The same programs pass the mutation oracle on pristine builds of all
    /// three engines — row, columnar, and disk.
    #[test]
    fn pristine_engines_pass_the_mutation_oracle(
        seed in 0u64..10_000,
        profile_idx in 0usize..4,
    ) {
        let dsg = shared_dsg();
        let profile = ProfileId::ALL[profile_idx];
        let mut generator = DmlGenerator::new(DmlGenConfig { seed, ..Default::default() });
        let program = generator.generate_program(dsg);
        let oracle = DmlOracle::from_dsg(dsg);
        for (label, mut conn) in [
            ("row", EngineConnector::connect_pristine(profile, dsg)),
            ("columnar", EngineConnector::connect_columnar_pristine(profile, dsg)),
            ("disk", EngineConnector::connect_disk_pristine(profile, dsg)),
        ] {
            match oracle.check_program(&program, &mut conn) {
                OracleVerdict::Pass => {}
                OracleVerdict::Skip => prop_assert!(
                    false,
                    "{} engine skipped program\n{}", label, render_program(&program)
                ),
                OracleVerdict::Bugs(reports) => prop_assert!(
                    false,
                    "{} engine diverged from ground truth on\n{}\nfirst report: {} expected {} observed {}",
                    label,
                    render_program(&program),
                    reports[0].transformed_sql,
                    reports[0].expected_rows,
                    reports[0].observed_rows
                ),
            }
        }
    }
}

/// Mid-transaction, the committed view still shows the pre-BEGIN rows, and
/// ROLLBACK restores the *same row identities*, not merely equal values.
#[test]
fn rollback_restores_the_same_row_identities() {
    let dsg = shared_dsg();
    let catalog = &dsg.db.catalog;
    let mut gt = MutationGroundTruth::new(catalog);
    let table = catalog
        .iter()
        .next()
        .expect("non-empty catalog")
        .name
        .clone();
    let before = gt.visible_rows(&table).unwrap().to_vec();
    assert!(!before.is_empty());

    gt.apply(&DmlStmt::Begin).unwrap();
    let n = gt
        .apply(&DmlStmt::Delete(DeleteStmt {
            table: table.clone(),
            where_clause: None,
        }))
        .unwrap();
    assert_eq!(n, before.len());
    assert!(gt.visible_rows(&table).unwrap().is_empty());
    assert_eq!(gt.committed_rows(&table).unwrap(), before);

    gt.apply(&DmlStmt::Rollback).unwrap();
    assert_eq!(gt.visible_rows(&table).unwrap(), &before[..]);
}
