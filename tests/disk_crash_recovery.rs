//! Crash-recovery golden test for the disk engine: kill the store at every
//! [`CrashPoint`] inside a commit, reopen the files cold (exactly what a
//! restarted process sees), and assert two invariants:
//!
//! 1. **Committed prefix is byte-identical.** WAL redo recovery must
//!    reconstruct precisely the rows of every committed batch — no committed
//!    row lost, no uncommitted row visible, every surviving row
//!    value-for-value equal to the uninterrupted reference load.
//! 2. **The verdict material survives.** After [`DiskDatabase::recover`]
//!    resumes the interrupted load, every probe statement returns the same
//!    result bag and the same fired-fault provenance as the reference build
//!    — so an oracle that judged the build before the crash reaches the
//!    identical verdict after it.

use std::collections::BTreeMap;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_engine::{DbmsProfile, DiskDatabase, EngineError, ProfileId};
use tqs_pager::{CrashPoint, DiskStore, DEFAULT_POOL_FRAMES};
use tqs_schema::NoiseConfig;
use tqs_sql::value::Value;
use tqs_storage::widegen::ShoppingConfig;
use tqs_storage::Catalog;

/// Probe statements covering the access paths the disk fault complement
/// gates on: a hash join (torn page / WAL loss / stale frame), a sort-merge
/// join (split high-key loss) and an IN-subquery (recovery double replay).
const PROBES: &[&str] = &[
    "SELECT T1.goodsId, T2.goodsName FROM T1 INNER JOIN T2 ON T1.goodsId = T2.goodsId",
    "SELECT /*+ MERGE_JOIN(T2) */ T1.goodsId, T2.goodsName FROM T1 \
     INNER JOIN T2 ON T1.goodsId = T2.goodsId",
    "SELECT T1.orderId FROM T1 WHERE T1.goodsId IN (SELECT T2.goodsId FROM T2)",
];

fn shopping_catalog() -> Catalog {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 130,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 13,
            max_injections: 12,
        }),
    })
    .db
    .catalog
    .clone()
}

/// Every table's rows as the store returns them, rowid included.
fn scan_all(db: &mut DiskDatabase) -> BTreeMap<String, Vec<(u64, Vec<Value>)>> {
    let names = db.catalog().table_names();
    names
        .into_iter()
        .map(|name| {
            let rows = db
                .store_mut()
                .scan(&name)
                .expect("scan the recovered table")
                .into_rows();
            (name, rows)
        })
        .collect()
}

/// Store-level golden for the exact commit boundary: a batch killed at
/// `BeforeWalAppend`/`WalAppended` must vanish entirely (its WAL record
/// never became durable), while a batch killed at `WalSynced`/
/// `MidHeapFlush`/`AfterFlush` must survive in full — the WAL sync is the
/// commit point, and redo recovery finishes the heap writes the kill
/// interrupted. Recovery itself must be idempotent: reopening twice (the
/// double-replay hazard [`FaultKind::DiskRecoveryDoubleReplay`] models)
/// yields byte-identical scans.
#[test]
fn batch_killed_at_every_crash_point_respects_the_commit_boundary() {
    let row = |i: i64| vec![Value::Int(i), Value::Varchar(format!("payload-{i}"))];
    let batch_a: Vec<Vec<Value>> = (0..48).map(row).collect();
    let batch_b: Vec<Vec<Value>> = (48..96).map(row).collect();

    // Reference: both batches committed with no interference.
    let base = std::env::temp_dir().join(format!("tqs-crash-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let reference = {
        let dir = base.join("reference");
        let mut store = DiskStore::create(&dir, DEFAULT_POOL_FRAMES).expect("reference store");
        store.create_table("t").expect("create table");
        store.commit().expect("commit the table");
        store.insert_batch("t", &batch_a).expect("batch A");
        store.insert_batch("t", &batch_b).expect("batch B");
        store.scan("t").expect("reference scan").into_rows()
    };
    assert_eq!(reference.len(), 96);

    for point in CrashPoint::ALL {
        let dir = base.join(point.label());
        let mut store = DiskStore::create(&dir, DEFAULT_POOL_FRAMES).expect("fresh store");
        store.create_table("t").expect("create table");
        store.commit().expect("commit the table");
        store.insert_batch("t", &batch_a).expect("batch A commits");
        store.set_crash_point(Some(point));
        let err = store
            .insert_batch("t", &batch_b)
            .expect_err("armed batch must die mid-commit");
        assert!(err.to_string().contains("injected crash"), "{point}: {err}");

        // The restarted process's view, twice — recovery must be idempotent.
        let (mut first, _) = DiskStore::open(&dir, DEFAULT_POOL_FRAMES).expect("first reopen");
        let got = first.scan("t").expect("scan after recovery").into_rows();
        drop(first);
        let (mut second, _) = DiskStore::open(&dir, DEFAULT_POOL_FRAMES).expect("second reopen");
        let again = second
            .scan("t")
            .expect("scan after re-recovery")
            .into_rows();
        assert_eq!(got, again, "{point}: recovery must be idempotent");

        let expected = if point.batch_is_committed() {
            &reference[..]
        } else {
            &reference[..batch_a.len()]
        };
        assert_eq!(
            got[..],
            *expected,
            "{point}: committed prefix must end exactly at the commit boundary \
             (got {} rows, expected {})",
            got.len(),
            expected.len()
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn kill_at_every_crash_point_recovers_the_committed_prefix_and_the_verdict() {
    let catalog = shopping_catalog();

    // The uninterrupted reference: same catalog, same seeded-fault build.
    let mut reference = DiskDatabase::new(catalog.clone(), DbmsProfile::disk(ProfileId::MysqlLike))
        .expect("reference disk build");
    let want_rows = scan_all(&mut reference);
    let want_outcomes: Vec<_> = PROBES
        .iter()
        .map(|sql| reference.execute_sql(sql).expect("reference probe"))
        .collect();
    assert!(
        want_outcomes.iter().any(|o| !o.fired.is_empty()),
        "the probe set must exercise the disk fault complement"
    );

    for point in CrashPoint::ALL {
        // Arm the kill, then start the load that will die mid-commit.
        let mut db = DiskDatabase::new(Catalog::new(), DbmsProfile::disk(ProfileId::MysqlLike))
            .expect("empty disk build");
        db.arm_crash(point);
        let err = db
            .load_catalog(catalog.clone())
            .expect_err("the armed crash point must kill the load");
        assert!(
            matches!(&err, EngineError::Storage(m) if m.contains("injected crash")),
            "unexpected error at {point}: {err}"
        );
        assert!(db.is_poisoned(), "{point}: store must be poisoned");
        assert!(
            db.execute_sql(PROBES[0]).is_err(),
            "{point}: a poisoned store must refuse statements"
        );

        // Cold reopen — the restarted process's view. WAL redo recovery must
        // leave exactly a committed prefix of the reference data.
        let (mut cold, _) =
            DiskStore::open(db.dir(), DEFAULT_POOL_FRAMES).expect("cold reopen after the kill");
        for (table, want) in &want_rows {
            // A table whose creating commit was killed legitimately does not
            // exist yet — its committed prefix is empty.
            let got = match cold.scan(table) {
                Ok(scan) => scan.into_rows(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => panic!("{point}: scan after cold reopen: {e}"),
            };
            assert!(
                got.len() <= want.len(),
                "{point}: {table}: recovered {} rows, reference has only {}",
                got.len(),
                want.len()
            );
            assert_eq!(
                got[..],
                want[..got.len()],
                "{point}: {table}: the committed prefix must be byte-identical"
            );
        }
        drop(cold);

        // Full recovery: replay the WAL, resume the interrupted load, and
        // converge on the reference state.
        db.recover().expect("recovery after the injected crash");
        assert!(!db.is_poisoned());
        assert!(db.last_recovery().is_some());
        assert_eq!(
            scan_all(&mut db),
            want_rows,
            "{point}: the resumed load must converge on the reference data"
        );

        // The discovering oracle's material is unchanged: same result bag,
        // same fired-fault provenance, for every probe.
        for (sql, want) in PROBES.iter().zip(&want_outcomes) {
            let got = db.execute_sql(sql).expect("probe after recovery");
            assert!(
                got.result.same_bag(&want.result),
                "{point}: result bag changed across crash+recovery for {sql}"
            );
            assert_eq!(
                got.fired, want.fired,
                "{point}: fault provenance changed across crash+recovery for {sql}"
            );
        }
    }
}
