//! The redesigned oracle layer end-to-end:
//!
//! * Cross-engine differential testing — the faulty row engine against the
//!   pristine columnar engine on the same DSG catalog — must detect injected
//!   join faults without any ground-truth machinery.
//! * All four baseline oracles (TQS, PQS, TLP, NoRec) run through the
//!   `Oracle` trait uniformly, via the same runner.

use tqs_core::backend::EngineConnector;
use tqs_core::baselines::{run_oracle_on, Baseline, BaselineConfig};
use tqs_core::bugs::OracleKind;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::oracle::{DifferentialOracle, Oracle, OracleVerdict, TqsOracle};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::{FaultKind, ProfileId};
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn dsg() -> DsgDatabase {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 17,
            max_injections: 24,
        }),
    })
}

#[test]
fn cross_engine_differential_detects_injected_join_faults() {
    // Row engine: faulty MySQL-like build (Table 4 complement).
    // Reference: pristine columnar build of the same dialect, same catalog.
    let d = dsg();
    let oracle = DifferentialOracle::new(EngineConnector::connect_columnar_pristine(
        ProfileId::MysqlLike,
        &d,
    ));
    let mut session = TqsSession::builder()
        .connector(EngineConnector::faulty(ProfileId::MysqlLike))
        .dsg(d)
        .config(TqsConfig {
            iterations: 150,
            queries_per_hour: 25,
            ..Default::default()
        })
        .oracle(oracle)
        .build()
        .unwrap();
    let stats = session.run();
    assert!(stats.tool.contains("differential"), "{}", stats.tool);
    assert!(
        stats.bug_count > 0,
        "cross-engine differential testing found nothing on a faulty build"
    );
    // The divergences must be attributable to injected row-engine join
    // faults: the columnar reference is pristine, so every fired fault in a
    // report belongs to the MySQL-like Table 4 complement.
    let implicated = session.bugs.implicated_faults();
    assert!(
        !implicated.is_empty(),
        "no fault provenance on any cross-engine report"
    );
    for f in &implicated {
        assert!(
            FaultKind::ALL.contains(f),
            "{f:?} is not a row-engine Table 4 fault"
        );
    }
    for r in &session.bugs.reports {
        assert_eq!(r.oracle, OracleKind::CrossEngine);
    }
}

#[test]
fn cross_engine_differential_is_sound_when_both_builds_are_pristine() {
    let d = dsg();
    let oracle = DifferentialOracle::new(EngineConnector::connect_columnar_pristine(
        ProfileId::XdbLike,
        &d,
    ));
    let mut session = TqsSession::builder()
        .connector(EngineConnector::pristine(ProfileId::XdbLike))
        .dsg(d)
        .config(TqsConfig {
            iterations: 60,
            queries_per_hour: 20,
            ..Default::default()
        })
        .oracle(oracle)
        .build()
        .unwrap();
    let stats = session.run();
    assert_eq!(
        stats.bug_count, 0,
        "pristine row vs pristine columnar diverged: {:#?}",
        session.bugs.reports
    );
    assert!(stats.queries_executed > stats.queries_skipped);
}

#[test]
fn the_columnar_build_is_catchable_too() {
    // Two-sided detection: testing the *columnar* faulty build against the
    // pristine row engine flags the columnar batching faults.
    let d = dsg();
    let oracle =
        DifferentialOracle::new(EngineConnector::connect_pristine(ProfileId::MysqlLike, &d));
    let mut session = TqsSession::builder()
        .connector(EngineConnector::columnar(ProfileId::MysqlLike))
        .dsg(d)
        .config(TqsConfig {
            iterations: 120,
            queries_per_hour: 25,
            ..Default::default()
        })
        .oracle(oracle)
        .build()
        .unwrap();
    let stats = session.run();
    assert!(stats.bug_count > 0, "columnar faults went undetected");
    let implicated = session.bugs.implicated_faults();
    assert!(
        implicated.iter().any(|f| FaultKind::COLUMNAR.contains(f)),
        "no columnar fault implicated: {implicated:?}"
    );
}

#[test]
fn all_four_oracles_run_uniformly_through_the_trait() {
    // One runner, four oracles, one connector type — the API the redesign
    // exists to provide.
    let d = dsg();
    let cfg = BaselineConfig {
        iterations: 120,
        queries_per_hour: 20,
        seed: 7,
    };
    let mut results = Vec::new();
    let mut oracles: Vec<(Option<Baseline>, Box<dyn Oracle>)> = vec![
        (None, Box::new(TqsOracle::new(&d))),
        (Some(Baseline::Pqs), Baseline::Pqs.oracle(&d)),
        (Some(Baseline::Tlp), Baseline::Tlp.oracle(&d)),
        (Some(Baseline::NoRec), Baseline::NoRec.oracle(&d)),
    ];
    for (baseline, oracle) in oracles.iter_mut() {
        let mut conn = EngineConnector::connect(ProfileId::MysqlLike, &d);
        let stats = run_oracle_on(oracle.as_mut(), *baseline, &mut conn, &d, &cfg);
        results.push((stats.tool.clone(), stats.bug_type_count));
    }
    let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["TQS", "PQS", "TLP", "NoRec"]);
    // TQS (ground truth) dominates every baseline on bug types — Figure 8.
    let tqs_types = results[0].1;
    for (name, types) in &results[1..] {
        assert!(
            tqs_types >= *types,
            "TQS types {tqs_types} < {name} types {types}"
        );
    }
}

#[test]
fn a_single_statement_flows_through_any_oracle() {
    // The minimal API surface: one stmt, one connector, one verdict.
    let d = dsg();
    let mut conn = EngineConnector::connect_pristine(ProfileId::TidbLike, &d);
    let table = &d.db.metas[0].name;
    let col = &d.db.metas[0].columns[0];
    let stmt = tqs_sql::parser::parse_stmt(&format!("SELECT {table}.{col} FROM {table}")).unwrap();
    let mut oracle = TqsOracle::new(&d);
    assert!(matches!(
        oracle.check(&stmt, &mut conn),
        OracleVerdict::Pass
    ));
}
