//! Acceptance tests for the corpus re-verification engine: a corpus hunted
//! on a faulty build re-verifies as 100% `StillFailing` on the same build
//! and 100% `Fixed` on the fault-free build, and compaction is idempotent.

use std::path::PathBuf;
use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, Corpus, EngineKind, Json, OracleSpec, PlanMode,
    ReverifyCampaign, ReverifyConfig, ReverifyReport, ReverifyStatus, Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tqs-reverify-rt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 100,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 17,
                max_injections: 12,
            }),
        },
        shards: 2,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 40,
        seed: 4242,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

fn reverify(dir: &std::path::Path, builds: Vec<BuildSpec>) -> ReverifyCampaign {
    ReverifyCampaign::load(ReverifyConfig {
        campaign: cfg(dir.to_path_buf()),
        builds,
        workers: 2,
    })
    .expect("load the corpus for re-verification")
}

#[test]
fn faulty_corpus_still_fails_on_the_same_build_and_fixes_on_pristine() {
    let dir = test_dir("verdicts");
    let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
    campaign.run().unwrap();
    let classes = campaign.class_keys().len();
    assert!(classes > 0, "seeded faults should surface");

    let rv = reverify(&dir, vec![BuildSpec::Faulty, BuildSpec::Pristine]);
    assert_eq!(rv.entries().len(), classes, "one corpus entry per class");
    let (report, stats) = rv.run();
    assert_eq!(stats.verdicts, classes * 2);

    // 100% StillFailing on the build that produced the corpus, 100% Fixed
    // on the fault-free build — no flaky, no stale.
    for v in &report.verdicts {
        match v.build {
            BuildSpec::Faulty => {
                assert_eq!(v.status, ReverifyStatus::StillFailing, "{v:?}");
                assert!(v.replay_reproduced && v.live_failing, "{v:?}");
            }
            BuildSpec::Pristine => {
                assert_eq!(v.status, ReverifyStatus::Fixed, "{v:?}");
                assert!(v.replay_reproduced && !v.live_failing, "{v:?}");
            }
        }
    }
    assert_eq!(report.count(ReverifyStatus::StillFailing), classes);
    assert_eq!(report.count(ReverifyStatus::Fixed), classes);
    assert_eq!(stats.flaky, 0);
    assert_eq!(stats.stale, 0);

    // Aggregated across builds every class is still open, so nothing is
    // garbage-collected even without keep_fixed.
    assert_eq!(report.surviving_classes(false), campaign.class_keys());

    // The machine-readable report round-trips through the JSON module.
    let parsed = Json::parse(&report.to_json().to_string()).unwrap();
    assert_eq!(ReverifyReport::from_json(&parsed).unwrap(), report);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_is_idempotent_and_garbage_collects_fixed_classes() {
    let dir = test_dir("compact");
    let mut campaign = Campaign::new(cfg(dir.clone())).unwrap();
    campaign.run().unwrap();
    let classes = campaign.class_keys().len();
    assert!(classes > 0);
    let corpus = Corpus::in_dir(&dir);

    // Compact against the faulty-build report: every class survives, and a
    // second pass is a byte-identical no-op.
    let (report, _) = reverify(&dir, vec![BuildSpec::Faulty]).run();
    let first = corpus.compact(|k| report.retain_class(k, false)).unwrap();
    assert_eq!(first.kept, classes);
    assert_eq!(first.classes_dropped, 0);
    let bytes = std::fs::read(corpus.path()).unwrap();
    let second = corpus.compact(|k| report.retain_class(k, false)).unwrap();
    assert_eq!(second.kept, classes);
    assert_eq!((second.duplicates_dropped, second.classes_dropped), (0, 0));
    assert_eq!(
        std::fs::read(corpus.path()).unwrap(),
        bytes,
        "second compaction must rewrite the corpus byte-identically"
    );

    // The compacted corpus still resumes to the same class set.
    let resumed = Campaign::resume(cfg(dir.clone())).unwrap();
    assert_eq!(resumed.class_keys(), campaign.class_keys());

    // Against the pristine build everything is Fixed: keep_fixed preserves
    // the corpus, a plain compaction garbage-collects it completely.
    let (fixed_report, stats) = reverify(&dir, vec![BuildSpec::Pristine]).run();
    assert_eq!(stats.fixed, classes);
    let kept = corpus
        .compact(|k| fixed_report.retain_class(k, true))
        .unwrap();
    assert_eq!(kept.kept, classes);
    let gone = corpus
        .compact(|k| fixed_report.retain_class(k, false))
        .unwrap();
    assert_eq!(gone.kept, 0);
    assert_eq!(gone.classes_dropped, classes);
    assert!(corpus.load().unwrap().is_empty());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_profile_cross_engine_corpora_re_verify_cleanly() {
    // The full cell grid shape `exp_campaign` uses: two profiles, both the
    // ground-truth and the cross-engine differential oracle. Re-verification
    // must route every entry back through its own cell's oracle and build.
    let dir = test_dir("mixed");
    let mut config = cfg(dir.clone());
    config.profiles = vec![ProfileId::MysqlLike, ProfileId::TidbLike];
    config.oracles = vec![OracleSpec::GroundTruth, OracleSpec::CrossEngine];
    config.queries_per_cell = 25;
    let mut campaign = Campaign::new(config.clone()).unwrap();
    campaign.run().unwrap();
    let classes = campaign.class_keys().len();
    assert!(classes > 0);

    let rv = ReverifyCampaign::load(ReverifyConfig {
        campaign: config,
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: 3,
    })
    .unwrap();
    let (report, stats) = rv.run();
    assert_eq!(stats.verdicts, classes * 2);
    assert_eq!(stats.flaky, 0, "{report:#?}");
    assert_eq!(stats.stale, 0, "{report:#?}");
    assert_eq!(
        report.count_on(BuildSpec::Faulty, ReverifyStatus::StillFailing),
        classes
    );
    assert_eq!(
        report.count_on(BuildSpec::Pristine, ReverifyStatus::Fixed),
        classes
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
