//! Fixed-seed determinism golden for the allocation-free execution path.
//!
//! `tests/fixtures/reverify_golden/` holds a small campaign (checkpoint +
//! corpus) recorded by the build *before* the binary join-key/compiled-scope
//! optimization, at a pinned seed. This test replays it against today's
//! engines and asserts the optimization changed nothing observable:
//!
//! 1. the corpus resumes cleanly (per-entry class keys still validate),
//! 2. a fresh hunt with the identical campaign identity rediscovers exactly
//!    the recorded bug-class set (no class gained or lost by the key change),
//! 3. re-verification classifies every recorded class `StillFailing` on the
//!    faulty builds — witness replay and live re-execution both still
//!    reproduce each class — with zero `Flaky`/`Stale`/`Fixed` verdicts.

use std::path::PathBuf;
use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, EngineKind, OracleSpec, PlanMode, ReverifyCampaign,
    ReverifyConfig, Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

/// The recorded campaign's identity. Must stay bit-compatible with the
/// fixture's checkpoint header — changing it invalidates the golden.
fn golden_cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 120,
                seed: 11,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 21,
                max_injections: 12,
            }),
        },
        shards: 2,
        workers: 1,
        profiles: vec![ProfileId::MysqlLike, ProfileId::TidbLike],
        oracles: vec![OracleSpec::GroundTruth, OracleSpec::CrossEngine],
        // The fixture's checkpoint was journaled before the engine axis
        // existed; its header omits `engines` and loads as the row-only
        // campaign it was, which this must match.
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 20,
        seed: 0x5EED,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

fn fixture_copy(tag: &str) -> PathBuf {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/reverify_golden");
    let dir = std::env::temp_dir().join(format!("tqs-golden-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for file in ["checkpoint.jsonl", "corpus.jsonl"] {
        std::fs::copy(fixture.join(file), dir.join(file)).unwrap();
    }
    dir
}

#[test]
fn pre_optimization_corpus_replays_as_still_failing() {
    let dir = fixture_copy("replay");

    // 1. The recorded campaign resumes: header matches, every corpus entry's
    //    persisted class key agrees with its report's (recomputed) key.
    let recorded = Campaign::resume(golden_cfg(dir.clone())).unwrap();
    assert!(recorded.is_complete());
    let recorded_classes = recorded.class_keys();
    assert!(
        recorded_classes.len() >= 50,
        "fixture should carry a substantial class set, got {}",
        recorded_classes.len()
    );

    // 2. Re-verify every class against the faulty builds that recorded it:
    //    100% StillFailing — the binary key change lost no divergence.
    let reverify = ReverifyCampaign::load(ReverifyConfig {
        campaign: golden_cfg(dir.clone()),
        builds: vec![BuildSpec::Faulty],
        workers: 2,
    })
    .unwrap();
    let (report, stats) = reverify.run();
    assert_eq!(stats.verdicts, recorded_classes.len());
    assert_eq!(
        stats.still_failing,
        recorded_classes.len(),
        "every pre-optimization class must still fail on the faulty build: {:?}",
        report
            .verdicts
            .iter()
            .filter(|v| v.status != tqs_campaign::ReverifyStatus::StillFailing)
            .collect::<Vec<_>>()
    );
    assert_eq!(stats.flaky, 0);
    assert_eq!(stats.stale, 0);
    assert_eq!(stats.fixed, 0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_hunt_rediscovers_the_recorded_class_set() {
    let dir = fixture_copy("rediscover");
    let recorded = Campaign::resume(golden_cfg(dir.clone())).unwrap();
    let recorded_classes = recorded.class_keys();

    // 3. A fresh hunt with the same identity — run on today's optimized
    //    execution path — must converge to the identical class-key set.
    let fresh_dir = std::env::temp_dir().join(format!("tqs-golden-fresh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fresh_dir);
    let mut fresh = Campaign::new(golden_cfg(fresh_dir.clone())).unwrap();
    fresh.run().unwrap();
    assert!(fresh.is_complete());
    assert_eq!(
        fresh.class_keys(),
        recorded_classes,
        "the optimization must not gain or lose a single bug class"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&fresh_dir).unwrap();
}
