//! Cross-engine parity property: on fault-free profiles, the disk engine
//! (B+tree page store, buffer pool, WAL) and the row engine produce
//! identical result bags for generated `SelectStmt`s — the invariant that
//! lets a pristine build of either engine referee the other in cross-engine
//! and three-way differential testing.

use proptest::prelude::*;
use std::sync::OnceLock;
use tqs_core::backend::{DbmsConnector, EngineConnector};
use tqs_core::dsg::{
    DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer, WideSource,
};
use tqs_core::hintgen::hint_sets_for;
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_sql::render::render_stmt;
use tqs_storage::widegen::ShoppingConfig;

fn shared_dsg() -> &'static DsgDatabase {
    static DSG: OnceLock<DsgDatabase> = OnceLock::new();
    DSG.get_or_init(|| {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 160,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.05,
                seed: 29,
                max_injections: 20,
            }),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Row and disk engines agree statement-for-statement (default plan and
    /// every hint-set transformation) on fault-free builds. The disk engine
    /// round-trips every row through the row codec, the B+tree heap and the
    /// buffer pool, so this property also certifies the storage stack
    /// itself: any codec/split/eviction defect shows up as a bag mismatch.
    #[test]
    fn pristine_disk_and_row_engines_are_answer_identical(
        seed in 0u64..10_000,
        profile_idx in 0usize..4,
    ) {
        let dsg = shared_dsg();
        let profile = ProfileId::ALL[profile_idx];
        let mut row = EngineConnector::connect_pristine(profile, dsg);
        let mut disk = EngineConnector::connect_disk_pristine(profile, dsg);
        let mut gen = QueryGenerator::new(QueryGenConfig {
            seed,
            ..Default::default()
        });
        for _ in 0..5 {
            let stmt = gen.generate(dsg, None, &UniformScorer);
            for hs in hint_sets_for(profile, &stmt) {
                let a = row.execute_with_hints(&stmt, &hs);
                let b = disk.execute_with_hints(&stmt, &hs);
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            a.result.same_bag(&b.result),
                            "{profile:?}/{} diverged on:\n{}\nrow ({} rows):\n{}\ndisk ({} rows):\n{}",
                            hs.label,
                            render_stmt(&stmt),
                            a.result.row_count(),
                            a.result.pretty(),
                            b.result.row_count(),
                            b.result.pretty()
                        );
                        prop_assert!(a.fired.is_empty());
                        prop_assert!(b.fired.is_empty());
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(
                        false,
                        "engines disagree on executability of {}: row ok={}, disk ok={}",
                        render_stmt(&stmt),
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}
