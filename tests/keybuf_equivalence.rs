//! Property tests pinning the binary [`KeyBuf`] join/group-key encoding
//! against the PR-4 string encoding it replaced.
//!
//! The legacy `"I:{i}|"` / `"F:{f}|"` / `"S:{s}|"` text encoder (and its
//! fault segments `"S:|"`, `"F:0|"`, `"D:{double}|"`) is kept here, in test
//! code only, as the executable reference: the binary encoding must agree
//! with it on every match/no-match decision — including NULL keys and every
//! fault-triggered path — while additionally being *injective*, which the
//! text encoding was not (a `'|'` inside a string value could shift segment
//! boundaries).

use proptest::prelude::*;
use tqs_engine::exec::execute_join;
use tqs_engine::{ExecContext, FaultKind, FaultSet, JoinAlgo, PhysicalJoin, Rel};
use tqs_sql::ast::{Expr, JoinType};
use tqs_sql::value::{hash_key, Decimal, HashKey, KeyBuf, Value};

// ---------------------------------------------------------------------------
// The legacy (PR-4) string encoding — reference implementation
// ---------------------------------------------------------------------------

fn legacy_canonical(v: &Value) -> String {
    match hash_key(v) {
        HashKey::Null => "N:".to_string(),
        HashKey::Int(i) => format!("I:{i}"),
        HashKey::Double(b) => format!("F:{}", f64::from_bits(b)),
        HashKey::Str(s) => format!("S:{s}"),
    }
}

/// Which key faults are active for the join under test (enabled in the
/// fault set *and* triggered by the execution path).
#[derive(Clone, Copy, Default)]
struct ActiveFaults {
    null_matches_empty: bool,
    float_precision: bool,
    varchar_via_double: bool,
    zero_split: bool,
}

fn legacy_is_boundary_like(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i >= 32_767 || *i <= -32_767,
        Value::UInt(u) => *u >= 32_767,
        Value::Varchar(s) | Value::Text(s) => {
            s.len() >= 8 && s.chars().all(|c| c == s.chars().next().unwrap())
        }
        Value::Float(f) => f.is_sign_negative() && *f == 0.0,
        Value::Double(f) => f.is_sign_negative() && *f == 0.0,
        _ => false,
    }
}

/// The PR-4 `encode_key`, verbatim semantics: `None` = never matches.
fn legacy_encode(values: &[&Value], f: ActiveFaults) -> Option<String> {
    let mut out = String::new();
    for v in values {
        if v.is_null() {
            if f.null_matches_empty {
                out.push_str("S:|");
                continue;
            }
            if f.float_precision {
                out.push_str("F:0|");
                continue;
            }
            return None;
        }
        if f.zero_split && legacy_is_boundary_like(v) {
            return None;
        }
        if f.varchar_via_double {
            if let Some(s) = v.as_str() {
                if s.len() > 8 {
                    out.push_str(&format!("D:{}|", v.as_f64_lossy().unwrap_or(0.0)));
                    continue;
                }
            }
        }
        if f.float_precision {
            if let Some(fl) = v.as_f64_lossy() {
                if v.as_str().is_none() {
                    let rounded = fl as f32 as f64;
                    out.push_str(&format!("F:{rounded}|"));
                    continue;
                }
            }
        }
        out.push_str(&legacy_canonical(v));
        out.push('|');
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Value generator
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        Just(Value::Int(32_767)),
        Just(Value::Int(-32_768)),
        any::<bool>().prop_map(Value::Bool),
        (-64i64..64).prop_map(|i| Value::Double(i as f64 / 8.0)),
        Just(Value::Double(-0.0)),
        Just(Value::Double(0.1)),
        Just(Value::Double(1e-40)),
        (-64i64..64).prop_map(|i| Value::Float(i as f32 / 4.0)),
        Just(Value::Float(-0.0)),
        (-500i64..500).prop_map(|m| Value::Decimal(Decimal::new(m as i128, 2))),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Varchar),
        Just(Value::str("aaaaaaaa")),
        Just(Value::str("123456789x")),
        // Word-final Greek sigma: char-wise case folding must agree across
        // collate_cmp, hash_key and the binary encoder.
        Just(Value::str("AΣ")),
        Just(Value::str("Aσ")),
        Just(Value::str("aς")),
        "[a-z]{9,11}".prop_map(Value::Text),
        any::<i16>().prop_map(|d| Value::Date(d as i32)),
    ]
}

fn canonical_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| hash_key(x) == hash_key(y))
}

fn encode_canonical(vs: &[Value]) -> KeyBuf {
    let mut k = KeyBuf::new();
    for v in vs {
        k.push_canonical(v);
    }
    k
}

fn group_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.type_tag() == y.type_tag() && x.to_string() == y.to_string())
}

fn encode_group(vs: &[Value]) -> KeyBuf {
    let mut k = KeyBuf::new();
    for v in vs {
        k.push_group(v);
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Canonical binary keys are injective on the hash-key equivalence:
    /// equal bytes ⟺ element-wise equal `hash_key`s.
    #[test]
    fn canonical_keybuf_is_injective(
        a in proptest::collection::vec(arb_value(), 1..4),
        b in proptest::collection::vec(arb_value(), 1..4),
    ) {
        prop_assert_eq!(
            encode_canonical(&a) == encode_canonical(&b),
            canonical_equal(&a, &b)
        );
    }

    /// Group/DISTINCT binary keys are injective on the `(type_tag, Display)`
    /// equivalence the executors used to format per row.
    #[test]
    fn group_keybuf_is_injective(
        a in proptest::collection::vec(arb_value(), 1..4),
        b in proptest::collection::vec(arb_value(), 1..4),
    ) {
        prop_assert_eq!(
            encode_group(&a) == encode_group(&b),
            group_equal(&a, &b)
        );
    }

    /// Against the legacy text encoding (fault-free path): the binary key
    /// matches exactly when the legacy key matched. NULLs (`None`) never
    /// match on either side.
    #[test]
    fn canonical_matches_agree_with_legacy_text(
        a in arb_value(),
        b in arb_value(),
    ) {
        let legacy = match (
            legacy_encode(&[&a], ActiveFaults::default()),
            legacy_encode(&[&b], ActiveFaults::default()),
        ) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        let binary = !a.is_null()
            && !b.is_null()
            && encode_canonical(std::slice::from_ref(&a))
                == encode_canonical(std::slice::from_ref(&b));
        prop_assert_eq!(binary, legacy);
    }
}

/// The collision class the binary encoding *fixes*. Canonical legacy
/// segments case-fold their payload, so an embedded `"|S:"` could not fake a
/// tag — but the columnar dictionary-truncation fault emitted *raw*
/// `"S:{clip}|"` segments, where a `'|'` inside a clipped value shifts
/// segment boundaries and two different multi-column keys encode to the same
/// text. The binary form length-prefixes every string segment, so the
/// sequences stay distinct.
#[test]
fn binary_encoding_fixes_legacy_boundary_shift_collision() {
    let legacy_raw = |parts: &[&str]| parts.iter().map(|s| format!("S:{s}|")).collect::<String>();
    let binary_raw = |parts: &[&str]| {
        let mut k = KeyBuf::new();
        for p in parts {
            k.push_str_raw(p);
        }
        k
    };
    let a = ["ab|S:cd", "e"];
    let b = ["ab", "cd|S:e"];
    assert_eq!(
        legacy_raw(&a),
        legacy_raw(&b),
        "legacy raw text encoding collides across the segment boundary"
    );
    assert_ne!(
        binary_raw(&a),
        binary_raw(&b),
        "binary encoding must keep the sequences distinct"
    );
}

// ---------------------------------------------------------------------------
// Fault-path agreement, end to end through execute_join
// ---------------------------------------------------------------------------

fn rel_with_tags(keys: &[Value], binding: &str, tag_base: i64) -> Rel {
    Rel {
        cols: vec![
            (binding.to_string(), "k".to_string()),
            (binding.to_string(), "tag".to_string()),
        ],
        rows: keys
            .iter()
            .enumerate()
            .map(|(i, k)| vec![k.clone(), Value::Int(tag_base + i as i64)])
            .collect(),
    }
}

fn join_spec(join_type: JoinType) -> PhysicalJoin {
    PhysicalJoin {
        right_binding: "r".into(),
        join_type,
        algo: JoinAlgo::HashJoin,
        simplified_from_outer: false,
        buffer_rows: None,
    }
}

fn on_clause() -> Expr {
    Expr::eq(Expr::col("l", "k"), Expr::col("r", "k"))
}

/// Reference match set from the legacy encoder: inner-join (li, ri) pairs.
fn legacy_pairs(left: &[Value], right: &[Value], f: ActiveFaults) -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for (li, lk) in left.iter().enumerate() {
        for (ri, rk) in right.iter().enumerate() {
            let l = legacy_encode(&[lk], f);
            let r = legacy_encode(&[rk], f);
            if let (Some(l), Some(r)) = (l, r) {
                if l == r {
                    out.push((li as i64, 1000 + ri as i64));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn engine_pairs(
    left: &[Value],
    right: &[Value],
    join_type: JoinType,
    faults: FaultSet,
    materialization: bool,
) -> (Vec<(i64, i64)>, Vec<FaultKind>) {
    let l = rel_with_tags(left, "l", 0);
    let r = rel_with_tags(right, "r", 1000);
    let mut ctx = ExecContext::new(faults);
    ctx.materialization = materialization;
    let out = execute_join(&l, &r, &join_spec(join_type), Some(&on_clause()), &mut ctx).unwrap();
    let mut pairs: Vec<(i64, i64)> = out
        .rows
        .iter()
        .map(|row| {
            let lt = row[1].as_i128_exact().unwrap() as i64;
            let rt = row
                .get(3)
                .and_then(|v| v.as_i128_exact())
                .map(|v| v as i64)
                .unwrap_or(-1);
            (lt, rt)
        })
        .collect();
    pairs.sort_unstable();
    let mut fired = ctx.fired;
    fired.sort();
    (pairs, fired)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Inner hash joins under every key fault match exactly the rows the
    /// legacy string encoding matched: NULL≍'' under
    /// `HashJoinNullMatchesEmpty`, boundary keys vanishing under
    /// `HashJoinMaterializationZeroSplit`, and long varchar keys colliding
    /// through the lossy double route under `HashJoinVarcharViaDouble`.
    #[test]
    fn hash_join_fault_paths_match_legacy(
        left in proptest::collection::vec(arb_value(), 1..8),
        right in proptest::collection::vec(arb_value(), 1..8),
        which in 0usize..4,
    ) {
        let (faults, active) = match which {
            0 => (FaultSet::none(), ActiveFaults::default()),
            1 => (
                FaultSet::of(&[FaultKind::HashJoinNullMatchesEmpty]),
                ActiveFaults { null_matches_empty: true, ..Default::default() },
            ),
            2 => (
                FaultSet::of(&[FaultKind::HashJoinMaterializationZeroSplit]),
                ActiveFaults { zero_split: true, ..Default::default() },
            ),
            _ => (
                FaultSet::of(&[FaultKind::HashJoinVarcharViaDouble]),
                ActiveFaults { varchar_via_double: true, ..Default::default() },
            ),
        };
        let (pairs, _) = engine_pairs(&left, &right, JoinType::Inner, faults, true);
        prop_assert_eq!(pairs, legacy_pairs(&left, &right, active));
    }

    /// The semi-join float-precision fault (NULL≍values rounding to +0 after
    /// the f32 round-trip) keeps exactly the legacy-matched left rows.
    #[test]
    fn semi_join_float_precision_matches_legacy(
        left in proptest::collection::vec(arb_value(), 1..8),
        right in proptest::collection::vec(arb_value(), 1..8),
    ) {
        let active = ActiveFaults { float_precision: true, ..Default::default() };
        // materialization=false triggers SemiJoinFloatPrecision on Semi.
        let (pairs, _) = engine_pairs(
            &left,
            &right,
            JoinType::Semi,
            FaultSet::of(&[FaultKind::SemiJoinFloatPrecision]),
            false,
        );
        let engine_lis: Vec<i64> = pairs.into_iter().map(|(li, _)| li).collect();
        let mut legacy_lis: Vec<i64> = legacy_pairs(&left, &right, active)
            .into_iter()
            .map(|(li, _)| li)
            .collect();
        legacy_lis.dedup();
        prop_assert_eq!(engine_lis, legacy_lis);
    }
}
