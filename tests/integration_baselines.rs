//! Baselines vs TQS on the same faulty engine and the same query budget:
//! TQS must find at least as many bug types, and its structural diversity
//! must dominate PQS (the Figure 8 shape).

use tqs_core::baselines::{run_baseline, Baseline, BaselineConfig};
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn dsg() -> DsgDatabase {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 3,
            max_injections: 24,
        }),
    })
}

#[test]
fn tqs_dominates_baselines_on_mysql_like() {
    let d = dsg();
    let budget = 150usize;
    let mut tqs = TqsSession::builder()
        .profile(ProfileId::MysqlLike)
        .dsg(d.clone())
        .config(TqsConfig {
            iterations: budget,
            ..Default::default()
        })
        .build()
        .unwrap();
    let tqs_stats = tqs.run();
    let base_cfg = BaselineConfig {
        iterations: budget,
        ..Default::default()
    };
    let pqs = run_baseline(Baseline::Pqs, ProfileId::MysqlLike, &d, &base_cfg);
    let tlp = run_baseline(Baseline::Tlp, ProfileId::MysqlLike, &d, &base_cfg);

    assert!(
        tqs_stats.diversity > pqs.diversity,
        "TQS diversity {} must beat PQS {}",
        tqs_stats.diversity,
        pqs.diversity
    );
    assert!(
        tqs_stats.bug_type_count >= pqs.bug_type_count,
        "TQS types {} < PQS types {}",
        tqs_stats.bug_type_count,
        pqs.bug_type_count
    );
    assert!(
        tqs_stats.bug_type_count >= tlp.bug_type_count,
        "TQS types {} < TLP types {}",
        tqs_stats.bug_type_count,
        tlp.bug_type_count
    );
    assert!(tqs_stats.bug_count > 0);
}

#[test]
fn ground_truth_catches_more_than_differential_testing() {
    // The !GT ablation: differential testing misses bugs that corrupt every
    // plan the same way (e.g. the constant-cache fault).
    let d = dsg();
    let run = |use_gt: bool| {
        let mut session = TqsSession::builder()
            .profile(ProfileId::MysqlLike)
            .dsg(d.clone())
            .config(TqsConfig {
                iterations: 150,
                use_ground_truth: use_gt,
                ..Default::default()
            })
            .build()
            .unwrap();
        session.run()
    };
    let with_gt = run(true);
    let without_gt = run(false);
    assert!(
        with_gt.bug_type_count >= without_gt.bug_type_count,
        "GT types {} < differential types {}",
        with_gt.bug_type_count,
        without_gt.bug_type_count
    );
}
