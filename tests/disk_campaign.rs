//! Acceptance test for the disk engine as a full campaign citizen: a hunt
//! over the (engine × oracle) grid — row and disk cells, ground-truth and
//! three-way differential oracles — must surface the storage-layer fault
//! complement as deduplicated bug classes, persist them to the corpus, and
//! re-verify them `StillFailing` on the faulty build and `Fixed` on the
//! pristine build through the discovering cell's own engine and oracle.

use std::collections::BTreeSet;
use std::path::PathBuf;
use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode,
    ReverifyCampaign, ReverifyConfig, ReverifyStatus, Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::{FaultKind, ProfileId};
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 110,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 23,
                max_injections: 12,
            }),
        },
        shards: 2,
        workers: 3,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth, OracleSpec::ThreeWay],
        engines: vec![EngineKind::Row, EngineKind::Disk],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell: 60,
        seed: 616,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

#[test]
fn disk_cells_surface_the_storage_fault_complement_and_reverify() {
    let dir = std::env::temp_dir().join(format!("tqs-disk-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = cfg(dir.clone());

    let mut campaign = Campaign::new(config.clone()).expect("fresh campaign");
    // 2 shards × 1 profile × 2 oracles × 2 engines.
    assert_eq!(campaign.cells_total(), 8);
    let stats = campaign.run().expect("campaign run");
    assert!(campaign.is_complete());
    assert!(stats.bug_classes > 0);

    // The corpus must hold classes discovered *by disk cells* whose root
    // cause is the storage fault complement — and at least three distinct
    // disk fault kinds must appear (the "disk-only fault classes").
    let entries = Corpus::in_dir(&dir).load().expect("load the corpus");
    assert_eq!(entries.len(), campaign.class_keys().len());
    let disk_classes: Vec<_> = entries
        .iter()
        .filter(|e| e.report.fired.iter().any(|f| FaultKind::DISK.contains(f)))
        .collect();
    assert!(
        disk_classes.len() >= 3,
        "expected >= 3 disk-fault classes, found {}",
        disk_classes.len()
    );
    for entry in &disk_classes {
        assert!(
            entry.connector.name.contains("[disk]"),
            "a disk-fault class must come from a disk build: {:?}",
            entry.connector
        );
    }
    let disk_kinds: BTreeSet<FaultKind> = disk_classes
        .iter()
        .flat_map(|e| e.report.fired.iter())
        .filter(|f| FaultKind::DISK.contains(f))
        .copied()
        .collect();
    assert!(
        disk_kinds.len() >= 3,
        "expected >= 3 distinct storage fault kinds, got {disk_kinds:?}"
    );

    // Every class — disk-discovered ones included — re-verifies through its
    // own cell's engine and oracle: StillFailing on the build that produced
    // it, Fixed on the fault-free build.
    let classes = campaign.class_keys().len();
    let rv = ReverifyCampaign::load(ReverifyConfig {
        campaign: config,
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: 3,
    })
    .expect("load the corpus for re-verification");
    let (report, rv_stats) = rv.run();
    assert_eq!(rv_stats.verdicts, classes * 2);
    assert_eq!(rv_stats.flaky, 0, "{report:#?}");
    assert_eq!(rv_stats.stale, 0, "{report:#?}");
    assert_eq!(
        report.count_on(BuildSpec::Faulty, ReverifyStatus::StillFailing),
        classes
    );
    assert_eq!(
        report.count_on(BuildSpec::Pristine, ReverifyStatus::Fixed),
        classes
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
