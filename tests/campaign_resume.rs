//! Campaign-level integration tests: the resume determinism contract, the
//! sharded-vs-unsharded bug-class comparison, and corpus replay.

use std::collections::BTreeSet;
use std::path::PathBuf;
use tqs_campaign::{Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode, Workload};
use tqs_core::backend::DbmsConnector;
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_sql::hints::HintSet;
use tqs_sql::parser::parse_stmt;
use tqs_storage::widegen::ShoppingConfig;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tqs-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One seeded-fault campaign configuration; identical across directories so
/// runs are comparable.
fn cfg(dir: PathBuf, shards: usize, queries_per_cell: usize) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 100,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 17,
                max_injections: 12,
            }),
        },
        shards,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select],
        queries_per_cell,
        seed: 4242,
        minimize: true,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

#[test]
fn killed_and_resumed_campaign_matches_uninterrupted_run() {
    // Uninterrupted reference run.
    let dir_a = test_dir("uninterrupted");
    let mut uninterrupted = Campaign::new(cfg(dir_a.clone(), 2, 40)).unwrap();
    let stats = uninterrupted.run().unwrap();
    assert!(uninterrupted.is_complete());
    assert!(stats.bug_classes > 0, "seeded faults should surface");

    // Same campaign identity in a second directory, killed after one cell.
    let dir_b = test_dir("killed");
    let mut killed = Campaign::new(CampaignConfig {
        max_cells_per_run: Some(1),
        workers: 1,
        ..cfg(dir_b.clone(), 2, 40)
    })
    .unwrap();
    killed.run().unwrap();
    assert!(!killed.is_complete());
    drop(killed); // the "kill": all in-memory state is gone

    // Resume from disk (different worker count on purpose — an operational
    // knob, not part of the campaign identity) and finish.
    let mut resumed = Campaign::resume(cfg(dir_b.clone(), 2, 40)).unwrap();
    assert_eq!(resumed.cells_done(), 1);
    resumed.run().unwrap();
    assert!(resumed.is_complete());

    // The deduplicated bug-class set is bit-identical.
    assert_eq!(
        resumed.class_keys(),
        uninterrupted.class_keys(),
        "killed+resumed campaign must reproduce the uninterrupted class set"
    );

    // And the persisted corpora agree with the in-memory triage state.
    let persisted: BTreeSet<String> = Corpus::in_dir(&dir_b)
        .load()
        .unwrap()
        .into_iter()
        .map(|e| e.class_key)
        .collect();
    assert_eq!(persisted, resumed.class_keys());

    // Resuming a *complete* campaign is a no-op that changes nothing.
    let mut again = Campaign::resume(cfg(dir_b.clone(), 2, 40)).unwrap();
    let stats = again.run().unwrap();
    assert_eq!(stats.cells_drained, 0);
    assert_eq!(again.class_keys(), uninterrupted.class_keys());

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn torn_final_lines_are_skipped_and_resume_reproduces_the_class_set() {
    // Reference: the uninterrupted run's deduplicated class set.
    let dir_ref = test_dir("torn-ref");
    let mut reference = Campaign::new(cfg(dir_ref.clone(), 2, 40)).unwrap();
    reference.run().unwrap();

    // Same campaign, killed after one cell — and killed *mid-write*: both
    // the corpus and the checkpoint journal end in a torn partial line, the
    // on-disk state a power cut during an append leaves behind.
    let dir = test_dir("torn");
    let mut killed = Campaign::new(CampaignConfig {
        max_cells_per_run: Some(1),
        workers: 1,
        ..cfg(dir.clone(), 2, 40)
    })
    .unwrap();
    killed.run().unwrap();
    drop(killed);
    for file in ["corpus.jsonl", "checkpoint.jsonl"] {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(file))
            .unwrap();
        use std::io::Write;
        // No trailing newline: a partial append, not a corrupt record.
        f.write_all(b"{\"cell\": 1, \"class\": \"SemiJo").unwrap();
    }

    // Resume truncates the torn tails — counted into the run's stats, not
    // printed — and completes to the exact class set of the uninterrupted
    // run.
    let mut resumed = Campaign::resume(cfg(dir.clone(), 2, 40)).unwrap();
    assert_eq!(
        resumed.cells_done(),
        1,
        "torn tail must not eat the journal"
    );
    assert_eq!(
        resumed.torn_tails_repaired(),
        2,
        "both the corpus and the checkpoint journal were torn"
    );
    let stats = resumed.run().unwrap();
    assert_eq!(stats.torn_tails_repaired, 2);
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.class_keys(),
        reference.class_keys(),
        "resume over torn tails must reproduce the uninterrupted class set"
    );

    // Resume truncated the torn tails before appending, so both files are
    // clean line-oriented JSONL again: the corpus loads in full and agrees
    // with the in-memory triage.
    let persisted: BTreeSet<String> = Corpus::in_dir(&dir)
        .load()
        .unwrap()
        .into_iter()
        .map(|e| e.class_key)
        .collect();
    assert_eq!(persisted, resumed.class_keys());
    let loaded = tqs_campaign::Checkpoint::in_dir(&dir).load().unwrap();
    assert_eq!(loaded.cells.len(), resumed.cells_total());

    std::fs::remove_dir_all(&dir_ref).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_and_unsharded_hunts_find_the_same_fault_classes() {
    // Same total query budget, same seeded fault build: two shards hunting
    // half the data each vs one worker over the whole catalog.
    let dir_sharded = test_dir("sharded");
    let mut sharded = Campaign::new(cfg(dir_sharded.clone(), 2, 150)).unwrap();
    sharded.run().unwrap();

    let dir_whole = test_dir("whole");
    let mut whole = Campaign::new(cfg(dir_whole.clone(), 1, 300)).unwrap();
    whole.run().unwrap();

    // Root-cause granularity (the paper's Table 4 "bug type" level): the
    // individual faults implicated across all classes. Which *combinations*
    // fire together depends on the exact query mix, but partitioned hunting
    // must not lose root-cause coverage relative to the monolithic hunt.
    let implicated = |c: &Campaign| -> BTreeSet<String> {
        c.triage()
            .fault_classes()
            .iter()
            .flat_map(|combo| combo.split('+').map(str::to_string))
            .collect()
    };
    let sharded_faults = implicated(&sharded);
    let whole_faults = implicated(&whole);
    assert!(!sharded_faults.is_empty());
    assert!(!whole_faults.is_empty());
    let missed: Vec<&String> = whole_faults.difference(&sharded_faults).collect();
    let extra: Vec<&String> = sharded_faults.difference(&whole_faults).collect();
    assert!(
        missed.is_empty() && extra.is_empty(),
        "root-cause sets diverged; sharded missed {missed:?}, found extra {extra:?}"
    );

    std::fs::remove_dir_all(&dir_sharded).unwrap();
    std::fs::remove_dir_all(&dir_whole).unwrap();
}

#[test]
fn corpus_witnesses_replay_without_the_engine() {
    let dir = test_dir("replay");
    let mut campaign = Campaign::new(cfg(dir.clone(), 1, 60)).unwrap();
    campaign.run().unwrap();
    let entries = Corpus::in_dir(&dir).load().unwrap();
    assert!(!entries.is_empty());
    for entry in &entries {
        // Every persisted class carries a witness trace; serving it back
        // through the replay backend reproduces the recorded outcomes
        // bit-for-bit, without the faulty engine build.
        assert!(!entry.trace.is_empty());
        let mut replay = entry.replay_connector();
        assert_eq!(replay.info().name, entry.connector.name);
        for stored in &entry.trace {
            let Ok(stmt) = parse_stmt(&stored.sql) else {
                continue;
            };
            let outcome = replay.execute_with_hints(&stmt, &HintSet::new(&stored.label));
            match &stored.error {
                Some(_) => assert!(outcome.is_err(), "recorded error must replay as error"),
                None => {
                    let out = outcome.expect("recorded statement must replay");
                    assert_eq!(out.result.row_count(), stored.rows.len());
                    assert_eq!(out.fired, stored.fired);
                }
            }
        }
        // A fingerprint-stamped report deduplicates under the same key after
        // the disk round-trip.
        assert_eq!(entry.report.class_key(), entry.class_key);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
