//! Acceptance test for mutation workloads as full campaign citizens: a DML
//! hunt over row × disk cells must surface the shared DML fault complement
//! as deduplicated [`OracleKind::Mutation`] classes, persist them with
//! replayable witness traces, re-verify them `StillFailing` on the faulty
//! build and `Fixed` on the pristine build, and survive a kill + resume with
//! a bit-identical class set.

use std::collections::BTreeSet;
use std::path::PathBuf;
use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode,
    ReverifyCampaign, ReverifyConfig, ReverifyStatus, Workload,
};
use tqs_core::bugs::OracleKind;
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::{FaultKind, ProfileId};
use tqs_storage::widegen::ShoppingConfig;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tqs-dml-campaign-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 110,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        },
        shards: 2,
        workers: 3,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Disk],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Dml],
        queries_per_cell: 40,
        seed: 737,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

#[test]
fn dml_cells_surface_the_mutation_fault_complement_and_reverify() {
    let dir = test_dir("hunt");
    let config = cfg(dir.clone());

    let mut campaign = Campaign::new(config.clone()).expect("fresh campaign");
    // 2 shards × 1 profile × 1 oracle × 2 engines × 1 plan mode × 1 workload.
    assert_eq!(campaign.cells_total(), 4);
    let stats = campaign.run().expect("campaign run");
    assert!(campaign.is_complete());
    assert!(stats.bug_classes > 0, "seeded DML faults should surface");

    // Every persisted class is a mutation report rooted in the DML fault
    // complement, and at least three distinct DML fault kinds appear.
    let entries = Corpus::in_dir(&dir).load().expect("load the corpus");
    assert_eq!(entries.len(), campaign.class_keys().len());
    for entry in &entries {
        assert_eq!(
            entry.report.oracle,
            OracleKind::Mutation,
            "a DML-workload campaign must only report mutation bugs: {:?}",
            entry.report
        );
        assert!(
            !entry.report.fired.is_empty()
                && entry
                    .report
                    .fired
                    .iter()
                    .all(|f| FaultKind::DML.contains(f)),
            "mutation classes must be rooted in the DML complement: {:?}",
            entry.report.fired
        );
        assert!(!entry.trace.is_empty(), "every class carries a witness");
    }
    let dml_kinds: BTreeSet<FaultKind> = entries
        .iter()
        .flat_map(|e| e.report.fired.iter())
        .copied()
        .collect();
    assert!(
        dml_kinds.len() >= 3,
        "expected >= 3 distinct DML fault kinds, got {dml_kinds:?}"
    );
    // Both engines contribute classes: transactions ride the WAL on disk
    // cells and the plain undo path on row cells.
    assert!(
        entries.iter().any(|e| e.connector.name.contains("[disk]")),
        "disk cells must contribute mutation classes"
    );
    assert!(
        entries.iter().any(|e| !e.connector.name.contains("[disk]")),
        "row cells must contribute mutation classes"
    );

    // 100% re-verification: every class StillFailing on the discovering
    // faulty build, Fixed on the pristine build — through the DML oracle.
    let classes = campaign.class_keys().len();
    let rv = ReverifyCampaign::load(ReverifyConfig {
        campaign: config,
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: 3,
    })
    .expect("load the corpus for re-verification");
    let (report, rv_stats) = rv.run();
    assert_eq!(rv_stats.verdicts, classes * 2);
    assert_eq!(rv_stats.flaky, 0, "{report:#?}");
    assert_eq!(rv_stats.stale, 0, "{report:#?}");
    assert_eq!(
        report.count_on(BuildSpec::Faulty, ReverifyStatus::StillFailing),
        classes
    );
    assert_eq!(
        report.count_on(BuildSpec::Pristine, ReverifyStatus::Fixed),
        classes
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_and_resumed_dml_campaign_matches_uninterrupted_run() {
    // Uninterrupted reference.
    let dir_a = test_dir("uninterrupted");
    let mut uninterrupted = Campaign::new(cfg(dir_a.clone())).unwrap();
    uninterrupted.run().unwrap();
    assert!(uninterrupted.is_complete());
    assert!(!uninterrupted.class_keys().is_empty());

    // Same campaign identity, killed after one cell.
    let dir_b = test_dir("killed");
    let mut killed = Campaign::new(CampaignConfig {
        max_cells_per_run: Some(1),
        workers: 1,
        ..cfg(dir_b.clone())
    })
    .unwrap();
    killed.run().unwrap();
    assert!(!killed.is_complete());
    drop(killed); // the "kill": all in-memory state is gone

    // Resume from disk and finish: the deduplicated mutation class set is
    // bit-identical to the uninterrupted run's.
    let mut resumed = Campaign::resume(cfg(dir_b.clone())).unwrap();
    assert_eq!(resumed.cells_done(), 1);
    resumed.run().unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.class_keys(),
        uninterrupted.class_keys(),
        "killed+resumed DML campaign must reproduce the uninterrupted class set"
    );
    let persisted: BTreeSet<String> = Corpus::in_dir(&dir_b)
        .load()
        .unwrap()
        .into_iter()
        .map(|e| e.class_key)
        .collect();
    assert_eq!(persisted, resumed.class_keys());

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
