//! Replay-from-log regression (ROADMAP item): a recorded bug-hunt session,
//! served back by `ReplayConnector`, reproduces the original run bit-for-bit
//! — same counts, same timelines — without the engine ever being present.

use tqs_core::backend::{DbmsConnector, EngineConnector, RecordingConnector};
use tqs_core::baselines::{run_oracle_on, BaselineConfig};
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::oracle::TqsOracle;
use tqs_core::tqs::RunStats;
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn dsg() -> DsgDatabase {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 150,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 8,
            max_injections: 16,
        }),
    })
}

fn hunt_cfg() -> BaselineConfig {
    BaselineConfig {
        iterations: 100,
        queries_per_hour: 20,
        seed: 4242,
    }
}

fn assert_same_run(a: &RunStats, b: &RunStats) {
    assert_eq!(a.dbms, b.dbms);
    assert_eq!(a.tool, b.tool);
    assert_eq!(a.queries_generated, b.queries_generated);
    assert_eq!(a.queries_executed, b.queries_executed);
    assert_eq!(a.queries_skipped, b.queries_skipped);
    assert_eq!(a.diversity, b.diversity);
    assert_eq!(a.bug_count, b.bug_count);
    assert_eq!(a.bug_type_count, b.bug_type_count);
    let timeline = |t: &[tqs_core::tqs::TimelinePoint]| -> Vec<(usize, usize)> {
        t.iter().map(|p| (p.hour, p.value)).collect()
    };
    assert_eq!(timeline(&a.bug_timeline), timeline(&b.bug_timeline));
    assert_eq!(
        timeline(&a.diversity_timeline),
        timeline(&b.diversity_timeline)
    );
    assert_eq!(
        timeline(&a.bug_type_timeline),
        timeline(&b.bug_type_timeline)
    );
}

#[test]
fn a_replayed_hunt_reproduces_the_recorded_session_exactly() {
    let d = dsg();

    // 1. Record a ground-truth hunt on the faulty TiDB-like build.
    let mut rec = RecordingConnector::new(EngineConnector::faulty(ProfileId::TidbLike));
    rec.load_catalog(&d.db.catalog).unwrap();
    let live = run_oracle_on(&mut TqsOracle::new(&d), None, &mut rec, &d, &hunt_cfg());
    assert!(live.bug_count > 0, "the recorded hunt must catch bugs");

    // 2. Replay: the identical hunt configuration against the trace alone —
    //    no engine behind the connector, outcomes served from the log.
    let mut replay = rec.replay();
    let replayed = run_oracle_on(&mut TqsOracle::new(&d), None, &mut replay, &d, &hunt_cfg());
    assert_same_run(&live, &replayed);

    // 3. And again — replay is repeatable, the regression suite property.
    let mut replay = rec.replay();
    let again = run_oracle_on(&mut TqsOracle::new(&d), None, &mut replay, &d, &hunt_cfg());
    assert_same_run(&live, &again);
}

#[test]
fn replay_differs_when_the_recorded_build_differs() {
    // The trace is the single source of truth: replaying a pristine
    // recording yields a clean run even though the query stream is the same.
    let d = dsg();
    let mut rec = RecordingConnector::new(EngineConnector::pristine(ProfileId::TidbLike));
    rec.load_catalog(&d.db.catalog).unwrap();
    let live = run_oracle_on(&mut TqsOracle::new(&d), None, &mut rec, &d, &hunt_cfg());
    assert_eq!(live.bug_count, 0);
    let mut replay = rec.replay();
    let replayed = run_oracle_on(&mut TqsOracle::new(&d), None, &mut replay, &d, &hunt_cfg());
    assert_eq!(replayed.bug_count, 0);
    assert_eq!(live.queries_executed, replayed.queries_executed);
}
