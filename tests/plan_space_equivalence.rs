//! Property test for the plan-space soundness contract: on pristine builds,
//! **every** plan the optimizer enumerates for a generated statement returns
//! the same result bag — across plans (join order, per-join algorithm,
//! subquery strategy) and across all three engines (row, columnar, disk) —
//! and that bag is the unhinted baseline's. Any counterexample would mean an
//! enumerated hint set changes query semantics, which is exactly the defect
//! class the plan-space oracle is built to hunt; here there are no seeded
//! faults, so the space must be silent.

use proptest::prelude::*;
use std::sync::Arc;
use tqs_campaign::EngineKind;
use tqs_core::backend::DbmsConnector;
use tqs_core::dsg::WideSource;
use tqs_core::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use tqs_engine::{FaultSet, ProfileId};
use tqs_optimizer::PlanSpace;
use tqs_schema::NoiseConfig;
use tqs_sql::hints::HintSet;
use tqs_storage::widegen::ShoppingConfig;

fn dsg() -> &'static Arc<DsgDatabase> {
    static DSG: std::sync::OnceLock<Arc<DsgDatabase>> = std::sync::OnceLock::new();
    DSG.get_or_init(|| {
        Arc::new(DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 90,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 9,
                max_injections: 10,
            }),
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_enumerated_plan_agrees_on_every_engine(seed in 0u64..1_000_000) {
        let dsg = dsg();
        let mut generator = QueryGenerator::new(QueryGenConfig {
            seed,
            ..Default::default()
        });
        let stmt = generator.generate(dsg, None, &UniformScorer);
        let space = PlanSpace::enumerate(&stmt, &dsg.db.catalog, &FaultSet::none());
        prop_assert!(space.rewrite_fired.is_empty());
        prop_assert!(space.cost_fired.is_empty());
        prop_assert!(!space.plans.is_empty());

        // The unhinted original statement on the row engine is the
        // reference bag every (plan, engine) execution must reproduce.
        let mut row = EngineKind::Row.connect_pristine(ProfileId::MysqlLike, dsg);
        let reference = match row.execute_with_hints(&stmt, &HintSet::new("baseline")) {
            Ok(out) => out.result,
            // A statement the engine cannot execute cannot be plan-hunted;
            // nothing to compare.
            Err(_) => return Ok(()),
        };

        for engine in EngineKind::ALL {
            let mut conn = engine.connect_pristine(ProfileId::MysqlLike, dsg);
            for plan in &space.plans {
                prop_assert_eq!(&plan.hints, &plan.intended);
                prop_assert!(plan.fired.is_empty());
                let out = conn
                    .execute_with_hints(&space.stmt, &plan.hints)
                    .expect("pristine build executes every enumerated plan");
                prop_assert!(
                    out.fired.is_empty(),
                    "no faults on a pristine {} build",
                    engine.label()
                );
                prop_assert!(
                    out.result.same_bag(&reference),
                    "plan {} on {} diverged from the unhinted baseline\nsql: {}",
                    plan.label(),
                    engine.label(),
                    tqs_sql::render::render_stmt(&space.stmt),
                );
            }
        }
    }
}
