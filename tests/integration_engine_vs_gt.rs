//! The central soundness property: for every generated query and every hint
//! set, a pristine engine's result matches the wide-table ground truth —
//! i.e. the DSG ground-truth machinery and the engine agree on SQL semantics.

use tqs_core::backend::{DbmsConnector, EngineConnector};
use tqs_core::dsg::{
    DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer, WideSource,
};
use tqs_core::hintgen::hint_sets_for;
use tqs_engine::ProfileId;
use tqs_schema::{GroundTruthEvaluator, NoiseConfig};
use tqs_sql::render::render_stmt;
use tqs_storage::widegen::ShoppingConfig;

#[test]
fn pristine_engines_match_ground_truth_on_many_generated_queries() {
    let dsg = DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 180,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.05,
            seed: 41,
            max_injections: 20,
        }),
    });
    let gt = GroundTruthEvaluator::new(&dsg.db);
    for profile in ProfileId::ALL {
        let mut conn = EngineConnector::connect_pristine(profile, &dsg);
        let mut gen = QueryGenerator::new(QueryGenConfig {
            seed: profile as u64 + 100,
            ..Default::default()
        });
        let mut checked = 0;
        for _ in 0..120 {
            let stmt = gen.generate(&dsg, None, &UniformScorer);
            let truth = match gt.evaluate(&stmt) {
                Ok(t) => t,
                Err(_) => continue,
            };
            for hs in hint_sets_for(profile, &stmt) {
                let out = match conn.execute_with_hints(&stmt, &hs) {
                    Ok(o) => o,
                    Err(_) => continue,
                };
                assert!(
                    truth.matches(&out.result),
                    "{profile:?} / hint `{}` diverged from ground truth on:\n{}\nGT ({} rows):\n{}\nengine ({} rows):\n{}",
                    hs.label,
                    render_stmt(&stmt),
                    truth.result.row_count(),
                    truth.result.pretty(),
                    out.result.row_count(),
                    out.result.pretty()
                );
                checked += 1;
            }
        }
        assert!(
            checked > 200,
            "{profile:?}: too few verified executions ({checked})"
        );
    }
}
