//! Cross-crate integration: the full DSG pipeline feeding the orchestrator,
//! across wide-table sources and profiles.

use tqs_core::backend::EngineConnector;
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_core::tqs::{TqsConfig, TqsSession};
use tqs_engine::ProfileId;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::{RandomFdConfig, ShoppingConfig, TpchLikeConfig};

fn cfg(iterations: usize) -> TqsConfig {
    TqsConfig {
        iterations,
        queries_per_hour: 20,
        ..Default::default()
    }
}

#[test]
fn tpch_like_source_end_to_end() {
    let dsg_cfg = DsgConfig {
        source: WideSource::TpchLike(TpchLikeConfig {
            n_rows: 200,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.03,
            seed: 21,
            max_injections: 16,
        }),
    };
    let mut session = TqsSession::builder()
        .profile(ProfileId::TidbLike)
        .dsg_config(&dsg_cfg)
        .config(cfg(80))
        .build()
        .unwrap();
    assert!(session.dsg.db.metas.len() >= 3);
    let stats = session.run();
    assert!(stats.queries_executed > 0);
    // the TiDB-like faults are merge-join faults; the merge-join hint set
    // must surface at least one of them over 80 iterations
    assert!(stats.bug_count > 0, "no TiDB-like bugs found");
}

#[test]
fn random_fd_source_end_to_end_pristine_is_sound() {
    let dsg_cfg = DsgConfig {
        source: WideSource::RandomFd(RandomFdConfig {
            n_groups: 3,
            n_rows: 150,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.05,
            seed: 5,
            max_injections: 12,
        }),
    };
    let mut session = TqsSession::builder()
        .connector(EngineConnector::pristine(ProfileId::MariadbLike))
        .dsg_config(&dsg_cfg)
        .config(cfg(60))
        .build()
        .unwrap();
    let stats = session.run();
    assert_eq!(stats.bug_count, 0, "{:#?}", session.bugs.reports);
}

#[test]
fn all_profiles_find_bugs_in_their_faulty_builds() {
    let dsg_cfg = DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 220,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 13,
            max_injections: 24,
        }),
    };
    for profile in ProfileId::ALL {
        let mut session = TqsSession::builder()
            .profile(profile)
            .dsg_config(&dsg_cfg)
            .config(cfg(150))
            .build()
            .unwrap();
        let stats = session.run();
        assert!(
            stats.bug_count > 0,
            "{profile:?}: no bugs found in the faulty build"
        );
        assert!(stats.diversity > 10, "{profile:?}: diversity too low");
    }
}
