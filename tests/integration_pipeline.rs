//! Cross-crate integration: the full DSG pipeline feeding the orchestrator,
//! across wide-table sources and profiles.

use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::tqs::{TqsConfig, TqsRunner};
use tqs_engine::{DbmsProfile, ProfileId};
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::{RandomFdConfig, ShoppingConfig, TpchLikeConfig};

fn cfg(iterations: usize) -> TqsConfig {
    TqsConfig { iterations, queries_per_hour: 20, ..Default::default() }
}

#[test]
fn tpch_like_source_end_to_end() {
    let dsg_cfg = DsgConfig {
        source: WideSource::TpchLike(TpchLikeConfig { n_rows: 200, ..Default::default() }),
        fd: Default::default(),
        noise: Some(NoiseConfig { epsilon: 0.03, seed: 21, max_injections: 16 }),
    };
    let dsg = DsgDatabase::build(&dsg_cfg);
    assert!(dsg.db.metas.len() >= 3);
    let mut runner = TqsRunner::with_database(
        ProfileId::TidbLike,
        DbmsProfile::build(ProfileId::TidbLike),
        dsg,
        cfg(80),
    );
    let stats = runner.run();
    assert!(stats.queries_executed > 0);
    // the TiDB-like faults are merge-join faults; the merge-join hint set
    // must surface at least one of them over 80 iterations
    assert!(stats.bug_count > 0, "no TiDB-like bugs found");
}

#[test]
fn random_fd_source_end_to_end_pristine_is_sound() {
    let dsg_cfg = DsgConfig {
        source: WideSource::RandomFd(RandomFdConfig { n_groups: 3, n_rows: 150, ..Default::default() }),
        fd: Default::default(),
        noise: Some(NoiseConfig { epsilon: 0.05, seed: 5, max_injections: 12 }),
    };
    let dsg = DsgDatabase::build(&dsg_cfg);
    let mut runner = TqsRunner::with_database(
        ProfileId::MariadbLike,
        DbmsProfile::pristine(ProfileId::MariadbLike),
        dsg,
        cfg(60),
    );
    let stats = runner.run();
    assert_eq!(stats.bug_count, 0, "{:#?}", runner.bugs.reports);
}

#[test]
fn all_profiles_find_bugs_in_their_faulty_builds() {
    let dsg_cfg = DsgConfig {
        source: WideSource::Shopping(ShoppingConfig { n_rows: 220, ..Default::default() }),
        fd: Default::default(),
        noise: Some(NoiseConfig { epsilon: 0.04, seed: 13, max_injections: 24 }),
    };
    for profile in ProfileId::ALL {
        let dsg = DsgDatabase::build(&dsg_cfg);
        let mut runner =
            TqsRunner::with_database(profile, DbmsProfile::build(profile), dsg, cfg(150));
        let stats = runner.run();
        assert!(stats.bug_count > 0, "{profile:?}: no bugs found in the faulty build");
        assert!(stats.diversity > 10, "{profile:?}: diversity too low");
    }
}
