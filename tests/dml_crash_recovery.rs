//! DML crash recovery: transactions on the disk engine ride the store's WAL
//! commit protocol, so killing the process at every [`CrashPoint`] inside a
//! transaction's COMMIT exercises a *real* commit boundary. The invariants,
//! checked point by point:
//!
//! * work committed before the crash is fully visible after
//!   [`DiskDatabase::recover`];
//! * the in-flight transaction is atomic across the boundary — fully visible
//!   iff its commit batch reached the WAL sync (the commit point), fully
//!   invisible otherwise, never partial;
//! * a poisoned store refuses DML until recovered;
//! * running recovery again is a no-op (same catalog, same committed delta).

use std::collections::BTreeMap;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_engine::{DbmsProfile, DiskDatabase, EngineError, ProfileId};
use tqs_pager::CrashPoint;
use tqs_sql::ast::{Assignment, DeleteStmt, DmlStmt, Expr, InsertStmt, UpdateStmt};
use tqs_sql::value::Value;
use tqs_storage::widegen::ShoppingConfig;
use tqs_storage::{Catalog, Row};

fn shopping_catalog() -> Catalog {
    DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 96,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: None,
    })
    .db
    .catalog
    .clone()
}

fn rows_of(catalog: &Catalog) -> BTreeMap<String, Vec<Row>> {
    catalog
        .iter()
        .map(|t| (t.name.clone(), t.rows.clone()))
        .collect()
}

/// A non-NULL value from the named column (the predicates below need a
/// literal that actually selects rows).
fn sample(catalog: &Catalog, table: &str, column: &str) -> Value {
    let t = catalog.table(table).expect("sample table");
    let ci = t.column_index(column).expect("sample column");
    t.rows
        .iter()
        .map(|r| r.values[ci].clone())
        .find(|v| *v != Value::Null)
        .expect("a non-NULL sample value")
}

/// Duplicate an existing row of `table` as an INSERT — admissible by
/// construction.
fn insert_dup(catalog: &Catalog, table: &str) -> DmlStmt {
    let t = catalog.table(table).expect("insert table");
    let row = t.rows.first().expect("a row to duplicate");
    DmlStmt::Insert(InsertStmt {
        table: table.to_string(),
        columns: t.columns.iter().map(|c| c.name.clone()).collect(),
        rows: vec![row.values.iter().cloned().map(Expr::lit).collect()],
    })
}

/// The statement sequence whose COMMIT the crash points kill. Touches two
/// tables through all three mutation kinds, so "fully invisible" is a
/// multi-table claim.
fn in_flight_txn(catalog: &Catalog) -> Vec<DmlStmt> {
    let g = sample(catalog, "T1", "goodsId");
    let name = sample(catalog, "T2", "goodsName");
    vec![
        DmlStmt::Begin,
        insert_dup(catalog, "T1"),
        DmlStmt::Update(UpdateStmt {
            table: "T2".into(),
            set: vec![Assignment {
                column: "goodsName".into(),
                value: Expr::lit(name),
            }],
            where_clause: Some(Expr::eq(Expr::col("T2", "goodsId"), Expr::lit(g.clone()))),
        }),
        DmlStmt::Delete(DeleteStmt {
            table: "T1".into(),
            where_clause: Some(Expr::eq(Expr::col("T1", "goodsId"), Expr::lit(g))),
        }),
        DmlStmt::Commit,
    ]
}

#[test]
fn txn_killed_at_every_crash_point_is_atomic_across_recovery() {
    let catalog = shopping_catalog();
    let profile = || DbmsProfile::pristine(ProfileId::MysqlLike);

    // Reference: the same prelude + transaction, uninterrupted.
    let prelude = insert_dup(&catalog, "T2");
    let txn = in_flight_txn(&catalog);
    let mut reference = DiskDatabase::new(catalog.clone(), profile()).expect("reference build");
    reference.execute_dml(&prelude).expect("reference prelude");
    for stmt in &txn {
        reference.execute_dml(stmt).expect("reference txn");
    }
    let with_txn = rows_of(reference.catalog());

    for point in CrashPoint::ALL {
        let mut db = DiskDatabase::new(catalog.clone(), profile()).expect("disk build");

        // Committed work before the crash: one auto-committed INSERT.
        db.execute_dml(&prelude).expect("prelude commits cleanly");
        let before_txn = rows_of(db.catalog());
        let committed_ops_before = db.committed_ops().len();

        // Arm the kill, run the transaction: the statements apply in the
        // session, the COMMIT dies inside the store's commit protocol.
        db.arm_crash(point);
        for stmt in &txn[..txn.len() - 1] {
            db.execute_dml(stmt)
                .expect("in-txn statements touch no disk");
        }
        assert!(db.in_txn(), "{point}: transaction must be open pre-commit");
        let err = db
            .execute_dml(txn.last().unwrap())
            .expect_err("armed COMMIT must die mid-commit");
        assert!(
            matches!(&err, EngineError::Storage(m) if m.contains("injected crash")),
            "unexpected error at {point}: {err}"
        );
        assert!(db.is_poisoned(), "{point}: store must be poisoned");
        assert!(
            db.execute_dml(&prelude).is_err(),
            "{point}: a poisoned store must refuse DML"
        );

        // Recover: the restarted process's view.
        db.recover().expect("recovery after the injected crash");
        assert!(!db.is_poisoned());
        assert!(!db.in_txn(), "{point}: recovery must close the session txn");
        let recovered = rows_of(db.catalog());
        let recovered_ops = db.committed_ops().to_vec();

        if point.batch_is_committed() {
            // The WAL sync happened: the commit batch is durable, the
            // transaction is fully visible.
            assert_eq!(
                recovered, with_txn,
                "{point}: a synced commit batch must make the txn fully visible"
            );
            assert!(
                recovered_ops.len() > committed_ops_before,
                "{point}: the txn's ops must be in the recovered log"
            );
        } else {
            // The WAL record never became durable: the transaction vanishes
            // entirely — not one of its three statements survives.
            assert_eq!(
                recovered, before_txn,
                "{point}: an unsynced commit batch must leave the txn fully invisible"
            );
            assert_eq!(
                recovered_ops.len(),
                committed_ops_before,
                "{point}: the recovered log must hold exactly the pre-txn ops"
            );
        }

        // Recovery is idempotent: a second replay changes nothing.
        db.recover().expect("second recovery");
        assert_eq!(
            rows_of(db.catalog()),
            recovered,
            "{point}: repeated recovery must be a no-op on the catalog"
        );
        assert_eq!(
            db.committed_ops(),
            &recovered_ops[..],
            "{point}: repeated recovery must be a no-op on the committed delta"
        );

        // The recovered engine is live again: the same transaction now
        // commits cleanly.
        for stmt in &txn {
            db.execute_dml(stmt)
                .expect("the recovered engine accepts the txn");
        }
    }
}

/// A crash between two committed transactions (armed but never reaching a
/// commit boundary is impossible — the store only does I/O at boundaries),
/// so the other half of the matrix: kill an *auto-commit* statement at every
/// point and require the same atomicity.
#[test]
fn autocommit_killed_at_every_crash_point_is_atomic() {
    let catalog = shopping_catalog();
    let stmt = insert_dup(&catalog, "T2");

    for point in CrashPoint::ALL {
        let mut db =
            DiskDatabase::new(catalog.clone(), DbmsProfile::pristine(ProfileId::MysqlLike))
                .expect("disk build");
        let before = rows_of(db.catalog());
        db.arm_crash(point);
        let err = db
            .execute_dml(&stmt)
            .expect_err("armed auto-commit must die");
        assert!(
            matches!(&err, EngineError::Storage(m) if m.contains("injected crash")),
            "unexpected error at {point}: {err}"
        );
        db.recover().expect("recovery");

        let recovered = rows_of(db.catalog());
        if point.batch_is_committed() {
            let mut want = before.clone();
            let t2 = want.get_mut("T2").expect("T2 rows");
            t2.push(t2.first().cloned().expect("duplicated row"));
            assert_eq!(
                recovered, want,
                "{point}: a synced auto-commit must survive in full"
            );
        } else {
            assert_eq!(
                recovered, before,
                "{point}: an unsynced auto-commit must vanish entirely"
            );
        }
    }
}
