//! Acceptance tests for the plan-space hunting pipeline: the enumerator
//! opens a real plan space on multi-join statements, a plan-space campaign
//! surfaces the seeded optimizer fault complement (Table 4 ids 30–34) as
//! deduplicated classes that re-verify `StillFailing` on the faulty build
//! and `Fixed` on the pristine build, each optimizer fault id is caught by
//! the [`PlanSpaceOracle`] in isolation, and a killed plan-space campaign
//! resumes to the bit-identical class set.

use std::collections::BTreeSet;
use std::path::PathBuf;
use tqs_campaign::{
    BuildSpec, Campaign, CampaignConfig, Corpus, EngineKind, OracleSpec, PlanMode,
    ReverifyCampaign, ReverifyConfig, ReverifyStatus, Workload,
};
use tqs_core::dsg::WideSource;
use tqs_core::dsg::{DsgConfig, DsgDatabase, QueryGenConfig, QueryGenerator, UniformScorer};
use tqs_core::oracle::{Oracle, OracleVerdict, PlanSpaceOracle};
use tqs_engine::{FaultKind, FaultSet, ProfileId};
use tqs_optimizer::PlanSpace;
use tqs_schema::NoiseConfig;
use tqs_sql::parser::parse_stmt;
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::Value;
use tqs_storage::widegen::ShoppingConfig;
use tqs_storage::{Catalog, Row, Table};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tqs-planspace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: PathBuf, shards: usize, queries_per_cell: usize) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 100,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 31,
                max_injections: 12,
            }),
        },
        shards,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row],
        plan_modes: vec![PlanMode::Space],
        workloads: vec![Workload::Select],
        queries_per_cell,
        seed: 3034,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

/// A 4-table chain join must open a real plan space: at least 10 distinct
/// plan fingerprints (join orders × per-join algorithm assignments).
#[test]
fn four_table_join_opens_at_least_ten_distinct_plans() {
    let table = |name: &str, rows: usize| {
        let mut t = Table::new(
            name,
            vec![
                ColumnDef::new("k", ColumnType::Int { unsigned: false }),
                ColumnDef::new("v", ColumnType::Int { unsigned: false }),
            ],
        );
        for i in 0..rows {
            t.push_row(Row::new(vec![
                Value::Int(i as i64),
                Value::Int((i * 7) as i64),
            ]))
            .unwrap();
        }
        t
    };
    let mut catalog = Catalog::new();
    catalog.add_table(table("t1", 64));
    catalog.add_table(table("t2", 32));
    catalog.add_table(table("t3", 8));
    catalog.add_table(table("t4", 2));
    let stmt = parse_stmt(
        "SELECT t1.k FROM t1 JOIN t2 ON t1.k = t2.k JOIN t3 ON t2.k = t3.k \
         JOIN t4 ON t3.k = t4.k",
    )
    .unwrap();
    let space = PlanSpace::enumerate(&stmt, &catalog, &FaultSet::none());
    let fingerprints: BTreeSet<u64> = space.plans.iter().map(|p| p.fingerprint).collect();
    assert!(
        fingerprints.len() >= 10,
        "expected >= 10 distinct plan fingerprints, got {}",
        fingerprints.len()
    );
    assert_eq!(
        fingerprints.len(),
        space.plans.len(),
        "plans dedup by fingerprint"
    );
}

/// Each optimizer fault id (Table 4, 30–34) is caught by the plan-space
/// oracle in isolation: enumerate under exactly one seeded fault on a
/// pristine executor and some generated statement must produce a report
/// implicating it — wrong rows (rewrite faults), a non-minimal cost pick
/// (cost faults) or a hint-conformance violation (the memo fault), with not
/// a single wrong row required for the latter two channels.
#[test]
fn every_optimizer_fault_id_is_caught_in_isolation() {
    let dsg = std::sync::Arc::new(DsgDatabase::build(&DsgConfig {
        source: WideSource::Shopping(ShoppingConfig {
            n_rows: 90,
            ..Default::default()
        }),
        fd: Default::default(),
        noise: Some(NoiseConfig {
            epsilon: 0.04,
            seed: 13,
            max_injections: 10,
        }),
    }));
    for kind in FaultKind::OPTIMIZER {
        let mut conn = EngineKind::Row.connect_pristine(ProfileId::MysqlLike, &dsg);
        let mut oracle =
            PlanSpaceOracle::shared(std::sync::Arc::clone(&dsg)).with_faults(FaultSet::of(&[kind]));
        let mut generator = QueryGenerator::new(QueryGenConfig {
            seed: 0x0907 + kind.table4_id() as u64,
            ..Default::default()
        });
        let mut caught = false;
        for _ in 0..200 {
            let stmt = generator.generate(&dsg, None, &UniformScorer);
            if let OracleVerdict::Bugs(reports) = oracle.check(&stmt, &mut conn) {
                if reports.iter().any(|r| r.fired.contains(&kind)) {
                    caught = true;
                    break;
                }
            }
        }
        assert!(
            caught,
            "optimizer fault {:?} (id {}) never caught in 200 statements",
            kind,
            kind.table4_id()
        );
    }
}

/// The plan-space campaign acceptance: a hunt with every cell in
/// `PlanMode::Space` on the seeded-fault build surfaces at least three
/// distinct optimizer fault kinds, and every persisted class re-verifies
/// `StillFailing` on the faulty build and `Fixed` on the pristine build
/// through the discovering cell's plan-space oracle.
#[test]
fn plan_space_cells_surface_optimizer_faults_and_reverify() {
    let dir = test_dir("hunt");
    let config = cfg(dir.clone(), 1, 40);

    let mut campaign = Campaign::new(config.clone()).expect("fresh campaign");
    let stats = campaign.run().expect("campaign run");
    assert!(campaign.is_complete());
    assert!(stats.bug_classes > 0);
    assert!(
        stats.plans > stats.queries,
        "plan-space cells must execute many plans per statement \
         ({} plans over {} queries)",
        stats.plans,
        stats.queries
    );

    let entries = Corpus::in_dir(&dir).load().expect("load the corpus");
    assert_eq!(entries.len(), campaign.class_keys().len());
    let optimizer_kinds: BTreeSet<FaultKind> = entries
        .iter()
        .flat_map(|e| e.report.fired.iter())
        .filter(|f| FaultKind::OPTIMIZER.contains(f))
        .copied()
        .collect();
    assert!(
        optimizer_kinds.len() >= 3,
        "expected >= 3 distinct optimizer fault kinds, got {optimizer_kinds:?}"
    );

    // Every class re-verifies through the plan-space oracle of its own cell.
    let classes = campaign.class_keys().len();
    let rv = ReverifyCampaign::load(ReverifyConfig {
        campaign: config,
        builds: vec![BuildSpec::Faulty, BuildSpec::Pristine],
        workers: 2,
    })
    .expect("load the corpus for re-verification");
    let (report, rv_stats) = rv.run();
    assert_eq!(rv_stats.verdicts, classes * 2);
    assert_eq!(rv_stats.flaky, 0, "{report:#?}");
    assert_eq!(rv_stats.stale, 0, "{report:#?}");
    assert_eq!(
        report.count_on(BuildSpec::Faulty, ReverifyStatus::StillFailing),
        classes
    );
    assert_eq!(
        report.count_on(BuildSpec::Pristine, ReverifyStatus::Fixed),
        classes
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The resume guarantee extends to the plan-mode axis: a plan-space campaign
/// killed after one cell and resumed reproduces the uninterrupted run's
/// deduplicated class set bit-identically.
#[test]
fn killed_plan_space_campaign_resumes_to_the_identical_class_set() {
    let dir_a = test_dir("uninterrupted");
    let mut uninterrupted = Campaign::new(cfg(dir_a.clone(), 2, 15)).unwrap();
    uninterrupted.run().unwrap();
    assert!(uninterrupted.is_complete());
    assert!(!uninterrupted.class_keys().is_empty());

    let dir_b = test_dir("killed");
    let mut killed = Campaign::new(CampaignConfig {
        max_cells_per_run: Some(1),
        workers: 1,
        ..cfg(dir_b.clone(), 2, 15)
    })
    .unwrap();
    killed.run().unwrap();
    assert!(!killed.is_complete());
    drop(killed);

    let mut resumed = Campaign::resume(cfg(dir_b.clone(), 2, 15)).unwrap();
    assert_eq!(resumed.cells_done(), 1);
    resumed.run().unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.class_keys(),
        uninterrupted.class_keys(),
        "killed+resumed plan-space campaign must reproduce the class set"
    );

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
