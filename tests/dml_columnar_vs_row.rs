//! Cross-engine DML parity: on fault-free builds, the row, columnar and
//! disk engines execute generated mutation programs identically —
//! statement-for-statement `rows_affected`, identical executability, and
//! bag-identical final table states. This is the invariant that lets a
//! pristine build of any engine stand in as the reference in cross-engine
//! differential mutation testing.

use proptest::prelude::*;
use std::sync::OnceLock;
use tqs_core::backend::{DbmsConnector, EngineConnector};
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_core::mutation::{DmlGenConfig, DmlGenerator};
use tqs_engine::ProfileId;
use tqs_sql::ast::{FromClause, SelectItem, SelectStmt};
use tqs_sql::render::{render_dml, render_program};
use tqs_storage::widegen::ShoppingConfig;

fn shared_dsg() -> &'static DsgDatabase {
    static DSG: OnceLock<DsgDatabase> = OnceLock::new();
    DSG.get_or_init(|| {
        DsgDatabase::build(&DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 140,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        })
    })
}

/// `SELECT every column FROM table` — the probe for final-state comparison.
fn select_all(dsg: &DsgDatabase, table: &str) -> SelectStmt {
    let t = dsg.db.catalog.table(table).expect("probe table");
    let mut stmt = SelectStmt::new(FromClause::single(&t.name));
    stmt.items = t
        .columns
        .iter()
        .map(|c| SelectItem::column(&t.name, &c.name))
        .collect();
    stmt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Pristine row, columnar and disk builds are DML-answer-identical:
    /// same per-statement success and rows_affected, same final state of
    /// every table, no faults fired anywhere.
    #[test]
    fn pristine_engines_execute_dml_identically(
        seed in 0u64..10_000,
        profile_idx in 0usize..4,
    ) {
        let dsg = shared_dsg();
        let profile = ProfileId::ALL[profile_idx];
        let mut engines = [
            ("row", EngineConnector::connect_pristine(profile, dsg)),
            ("columnar", EngineConnector::connect_columnar_pristine(profile, dsg)),
            ("disk", EngineConnector::connect_disk_pristine(profile, dsg)),
        ];
        let mut generator = DmlGenerator::new(DmlGenConfig { seed, ..Default::default() });
        let program = generator.generate_program(dsg);
        let rendered = render_program(&program);

        for stmt in &program {
            let mut outcomes = Vec::with_capacity(engines.len());
            for (label, conn) in engines.iter_mut() {
                outcomes.push((*label, conn.execute_dml(stmt)));
            }
            let (ref_label, reference) = &outcomes[0];
            for (label, outcome) in &outcomes[1..] {
                match (reference, outcome) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            a.result.same_bag(&b.result),
                            "{} and {} disagree on rows_affected of {} in\n{}",
                            ref_label, label, render_dml(stmt), rendered
                        );
                        prop_assert!(a.fired.is_empty(), "pristine {} fired faults", ref_label);
                        prop_assert!(b.fired.is_empty(), "pristine {} fired faults", label);
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(
                        false,
                        "{} (ok={}) and {} (ok={}) disagree on executability of {} in\n{}",
                        ref_label, a.is_ok(), label, b.is_ok(), render_dml(stmt), rendered
                    ),
                }
            }
        }

        // Final committed state: every table, bag-identical across engines.
        for table in dsg.db.catalog.table_names() {
            let probe = select_all(dsg, &table);
            let mut results = Vec::with_capacity(engines.len());
            for (label, conn) in engines.iter_mut() {
                let out = conn.execute(&probe);
                prop_assert!(out.is_ok(), "{}: final-state probe of {} failed", label, table);
                results.push((*label, out.unwrap()));
            }
            let (ref_label, reference) = &results[0];
            for (label, out) in &results[1..] {
                prop_assert!(
                    reference.result.same_bag(&out.result),
                    "{} ({} rows) and {} ({} rows) diverged on final state of {} after\n{}",
                    ref_label, reference.result.row_count(),
                    label, out.result.row_count(),
                    table, rendered
                );
            }
        }
    }
}
