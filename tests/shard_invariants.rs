//! Property tests for the sharding layer: row-range shard views of random
//! tables reassemble to exactly the full wide table (no gaps, no overlaps),
//! and `DsgDatabase::build_sharded` yields one identical schema on every
//! partition.

use proptest::prelude::*;
use std::sync::Arc;
use tqs_core::dsg::{DsgConfig, DsgDatabase, WideSource};
use tqs_sql::types::{ColumnDef, ColumnType};
use tqs_sql::value::Value;
use tqs_storage::widegen::ShoppingConfig;
use tqs_storage::{Row, ShardSpec, WideTable, WideTableShard};

/// A two-attribute wide table holding the given rows.
fn wide_table(rows: &[(i64, Option<i64>)]) -> WideTable {
    let mut w = WideTable::new(
        "Tw",
        vec![
            ColumnDef::new("a", ColumnType::Int { unsigned: false }),
            ColumnDef::new("b", ColumnType::Int { unsigned: false }),
        ],
    );
    for (a, b) in rows {
        w.append(vec![
            Value::Int(*a),
            b.map(Value::Int).unwrap_or(Value::Null),
        ])
        .expect("rows match the wide schema");
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ShardSpec::row_range` partitions `0..total` for any (total, count):
    /// contiguous, gap-free, overlap-free, sizes balanced within one row.
    #[test]
    fn shard_ranges_partition_any_row_space(total in 0usize..600, count in 1usize..17) {
        let mut next = 0usize;
        for spec in ShardSpec::split(count) {
            let range = spec.row_range(total);
            prop_assert_eq!(range.start, next);
            prop_assert!(range.len() >= total / count);
            prop_assert!(range.len() <= total / count + 1);
            next = range.end;
        }
        prop_assert_eq!(next, total);
    }

    /// Shard views over a random catalog reassemble to exactly the full
    /// table: concatenating every shard's rows in shard order reproduces the
    /// original row sequence, and materialized shards keep the attribute
    /// values while re-densifying `RowID`s.
    #[test]
    fn shard_views_reassemble_the_wide_table(
        rows in proptest::collection::vec(
            ((-1000i64..1000), proptest::option::of(0i64..50)),
            0..120,
        ),
        count in 1usize..9,
    ) {
        let wide = Arc::new(wide_table(&rows));
        let shards = WideTableShard::split(Arc::clone(&wide), count);
        prop_assert_eq!(shards.len(), count);

        // Zero-copy: every view shares the one underlying table.
        for shard in &shards {
            prop_assert!(Arc::ptr_eq(shard.wide(), &wide));
        }

        // No gaps, no overlaps, nothing reordered.
        let reassembled: Vec<Row> = shards
            .iter()
            .flat_map(|s| s.rows().iter().cloned())
            .collect();
        prop_assert_eq!(&reassembled, &wide.table.rows);

        // Attribute values survive materialization shard-locally.
        let mut attrs = Vec::new();
        for shard in &shards {
            let owned = shard.materialize();
            prop_assert_eq!(owned.row_count(), shard.row_count());
            for i in 0..shard.row_count() {
                prop_assert_eq!(shard.attrs_of(i), owned.attrs_of(i as u64));
                attrs.push(owned.attrs_of(i as u64).expect("row in range"));
            }
        }
        let expected: Vec<Vec<Value>> = rows
            .iter()
            .map(|(a, b)| vec![Value::Int(*a), b.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        prop_assert_eq!(attrs, expected);
    }
}

proptest! {
    // Each case normalizes several databases; a handful of cases keeps the
    // suite fast while still varying rows, seeds and shard counts.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded DSG builds agree on the schema: every partition normalizes to
    /// the same tables, columns and join edges as the unsharded build (the
    /// property that keeps queries, ground truth and plan fingerprints
    /// comparable fleet-wide), while the shard row spaces partition the
    /// generated wide table.
    #[test]
    fn build_sharded_schemas_are_identical_across_partitions(
        n_rows in 40usize..120,
        count in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let cfg = DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows,
                seed,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: None,
        };
        let full = DsgDatabase::build(&cfg);
        let shards = DsgDatabase::build_sharded(&cfg, count);
        prop_assert_eq!(shards.len(), count);
        for shard in &shards {
            prop_assert_eq!(&shard.schema_desc.tables, &full.schema_desc.tables);
            prop_assert_eq!(&shard.schema_desc.columns, &full.schema_desc.columns);
            prop_assert_eq!(&shard.schema_desc.join_edges, &full.schema_desc.join_edges);
        }
        // The shard wide tables partition the full wide table's rows.
        let total: usize = shards.iter().map(|s| s.db.wide.row_count()).sum();
        prop_assert_eq!(total, full.db.wide.row_count());
    }
}
