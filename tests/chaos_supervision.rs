//! Supervision goldens: the campaign runtime under injected worker panics,
//! environmental IO faults, and cell/statement deadlines.
//!
//! The contract under test (ISSUE 10): a supervised campaign *completes*
//! despite chaos — panicking cells become first-class `harness-panic`
//! incident classes, persistent offenders land on the quarantine list,
//! injected IO faults are retried away — and none of it perturbs the
//! ordinary bug-class set, even across a kill/resume cycle.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;
use tqs_campaign::{
    Campaign, CampaignConfig, EngineKind, OracleSpec, PlanMode, Quarantine, SupervisorConfig,
    Workload,
};
use tqs_core::dsg::{DsgConfig, WideSource};
use tqs_engine::ProfileId;
use tqs_pager::EnvFaultPolicy;
use tqs_schema::NoiseConfig;
use tqs_storage::widegen::ShoppingConfig;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tqs-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Quiet the default panic hook: injected worker panics are the point of
/// these tests and must not spray backtraces over the test output.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn cfg(dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        dir,
        dsg: DsgConfig {
            source: WideSource::Shopping(ShoppingConfig {
                n_rows: 90,
                ..Default::default()
            }),
            fd: Default::default(),
            noise: Some(NoiseConfig {
                epsilon: 0.04,
                seed: 3,
                max_injections: 12,
            }),
        },
        // 3 shards × 2 engines × 2 workloads = 12 cells: wide enough that a
        // 40% chaos rate deterministically picks several panicking cells.
        shards: 3,
        workers: 2,
        profiles: vec![ProfileId::MysqlLike],
        oracles: vec![OracleSpec::GroundTruth],
        engines: vec![EngineKind::Row, EngineKind::Columnar],
        plan_modes: vec![PlanMode::Single],
        workloads: vec![Workload::Select, Workload::Dml],
        queries_per_cell: 30,
        seed: 3,
        minimize: false,
        max_cells_per_run: None,
        supervisor: Default::default(),
    }
}

/// Chaos knobs shared by the golden and the kill/resume test so both runs
/// inject the *same* panics and IO faults. Note each run needs a fresh
/// `EnvFaultPolicy` (the policy is shared state: its injection counter and
/// free-pass bit travel with clones of the same seeded instance).
fn chaos_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        chaos_panic_pct: 40,
        chaos_seed: 0xC4A0,
        env_faults: EnvFaultPolicy::seeded(9, 25),
        ..Default::default()
    }
}

fn ordinary(classes: &BTreeSet<String>) -> BTreeSet<String> {
    classes
        .iter()
        .filter(|k| !k.contains("harness-panic"))
        .cloned()
        .collect()
}

#[test]
fn chaos_run_completes_and_matches_the_fault_free_class_set() {
    quiet_panics();
    // Fault-free reference.
    let dir_ref = test_dir("golden-ref");
    let mut reference = Campaign::new(cfg(dir_ref.clone())).unwrap();
    reference.run().unwrap();
    assert!(reference.is_complete());
    let ref_classes = reference.class_keys();
    assert!(!ref_classes.is_empty(), "seeded faults should surface");

    // Chaos leg: same grid, seeded panics + environmental IO faults.
    let dir = test_dir("golden");
    let mut chaos_cfg = cfg(dir.clone());
    chaos_cfg.supervisor = chaos_supervisor();
    let sup = chaos_cfg.supervisor.clone();
    let mut chaos = Campaign::new(chaos_cfg).unwrap();
    let cells = chaos.cells_total();
    let picked: Vec<usize> = (0..cells).filter(|&id| sup.chaos_panics(id, 1)).collect();
    let persistent: BTreeSet<usize> = (0..cells).filter(|&id| sup.chaos_persistent(id)).collect();
    assert!(
        picked.len() * 10 >= cells,
        "chaos seed must panic in at least 10% of cells (picked {picked:?} of {cells})"
    );

    let stats = chaos.run().unwrap();
    assert!(
        chaos.is_complete(),
        "supervision must drive the run to completion"
    );
    assert!(sup.env_faults.injected() > 0, "IO faults never fired");
    assert_eq!(stats.panics_caught, {
        // Transient offenders panic once; persistent ones panic on every
        // attempt until quarantined after max_attempts.
        let max = sup.max_attempts as usize;
        picked.len() + persistent.len() * (max - 1)
    });
    assert_eq!(stats.quarantined, persistent.len());

    // Every panicking cell is a first-class incident class.
    let classes = chaos.class_keys();
    for &id in &picked {
        let label = format!("harness-panic:cell-{id}");
        assert!(
            classes.iter().any(|k| k.contains(&label)),
            "cell {id} panicked but produced no incident class"
        );
    }

    // Persistent offenders — and only they — are quarantined, on disk too.
    let quarantined: BTreeSet<usize> = chaos.quarantined().iter().map(|q| q.cell_id).collect();
    assert_eq!(quarantined, persistent);
    let journaled: BTreeSet<usize> = Quarantine::in_dir(&dir)
        .load()
        .unwrap()
        .iter()
        .map(|q| q.cell_id)
        .collect();
    assert_eq!(journaled, persistent);

    // The ordinary bug-class set is byte-identical to the fault-free run:
    // panics and IO faults change what the campaign *survived*, never what
    // it *found*.
    assert_eq!(ordinary(&classes), ref_classes);

    std::fs::remove_dir_all(&dir_ref).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_and_resumed_chaos_run_is_bit_identical() {
    quiet_panics();
    // Uninterrupted chaos reference.
    let dir_a = test_dir("resume-ref");
    let mut ref_cfg = cfg(dir_a.clone());
    ref_cfg.supervisor = chaos_supervisor();
    let mut reference = Campaign::new(ref_cfg).unwrap();
    reference.run().unwrap();
    assert!(reference.is_complete());

    // Same chaos campaign killed (dropped) after every single cell: each
    // run drains one cell then dies, so resume must reconstruct triage,
    // quarantine, and retry state from the journals alone.
    let dir_b = test_dir("resume");
    let make = |dir: PathBuf| CampaignConfig {
        max_cells_per_run: Some(1),
        workers: 1,
        supervisor: chaos_supervisor(),
        ..cfg(dir)
    };
    let mut killed = Campaign::new(make(dir_b.clone())).unwrap();
    killed.run().unwrap();
    drop(killed);
    let mut rounds = 0;
    loop {
        let mut resumed = Campaign::resume(make(dir_b.clone())).unwrap();
        if resumed.is_complete() {
            // Final reload for the comparison below.
            assert_eq!(resumed.run().unwrap().cells_drained, 0);
            let q_ref: Vec<(usize, u32)> = reference
                .quarantined()
                .iter()
                .map(|q| (q.cell_id, q.attempts))
                .collect();
            let mut q_res: Vec<(usize, u32)> = resumed
                .quarantined()
                .iter()
                .map(|q| (q.cell_id, q.attempts))
                .collect();
            q_res.sort_unstable();
            let mut q_ref = q_ref;
            q_ref.sort_unstable();
            assert_eq!(q_res, q_ref, "quarantine list must survive kill/resume");
            assert_eq!(
                resumed.class_keys(),
                reference.class_keys(),
                "killed+resumed chaos run must reproduce the full class set \
                 (incidents included)"
            );
            break;
        }
        resumed.run().unwrap();
        drop(resumed);
        rounds += 1;
        assert!(rounds < 64, "chaos resume loop did not converge");
    }

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn zero_cell_deadline_times_out_every_cell_but_completes() {
    let dir = test_dir("deadline-cell");
    let mut dl_cfg = cfg(dir.clone());
    dl_cfg.supervisor = SupervisorConfig {
        cell_deadline: Some(Duration::ZERO),
        ..Default::default()
    };
    let mut campaign = Campaign::new(dl_cfg).unwrap();
    let stats = campaign.run().unwrap();
    // An already-expired budget: every cell gives up before its first
    // statement yet checkpoints as complete-with-timeout.
    assert!(campaign.is_complete());
    assert_eq!(stats.deadline_cells, campaign.cells_total());
    assert_eq!(stats.queries, 0);
    assert_eq!(campaign.class_keys().len(), 0);
    let journal = tqs_campaign::Checkpoint::in_dir(&dir).load().unwrap();
    assert!(journal.cells.iter().all(|c| c.timeout && c.queries == 0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_statement_deadline_cancels_statements_without_false_bugs() {
    let dir = test_dir("deadline-stmt");
    let mut dl_cfg = cfg(dir.clone());
    // Select-only grid: statement cancellation applies to the query path.
    // DML cells deliberately ignore the statement budget (cancelling one
    // side of a stateful comparison would fabricate divergence) and are
    // bounded by the cell deadline instead.
    dl_cfg.workloads = vec![Workload::Select];
    dl_cfg.supervisor = SupervisorConfig {
        stmt_deadline: Some(Duration::ZERO),
        ..Default::default()
    };
    let mut campaign = Campaign::new(dl_cfg).unwrap();
    let stats = campaign.run().unwrap();
    // Every statement is cancelled at its first progress check; the oracles
    // must classify those as skips — a timeout is never a bug report.
    assert!(campaign.is_complete());
    assert_eq!(stats.deadline_cells, 0, "cell budget was never set");
    assert_eq!(
        campaign.class_keys().len(),
        0,
        "cancelled statements must not be misread as divergence"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
